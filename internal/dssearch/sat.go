package dssearch

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/geom"
	"asrs/internal/segtree"
	"asrs/internal/sweep"
)

// This file implements the per-query incremental-aggregation layer of
// DS-Search: one `tables` value is built per Searcher and owns
//
//   - the master rectangle array, sorted by (MinX, MinY) when every
//     channel carries an exact-summation certificate, so that every
//     space's relevant rectangles form a binary-searchable contiguous
//     window;
//   - the flattened per-rectangle channel contributions (AppendContribs
//     evaluated once per query instead of once per discretization);
//   - the GPS-accuracy computation (Definition 7), derived from the
//     sorted coordinate arrays by a merge walk instead of re-sorting the
//     edge multiset per query;
//   - the query-level summed-area table (SAT) levels: 2D prefix sums of
//     rectangle-anchor counts and channel contributions over bin grids,
//     plus CSR per-bin id lists. Discretize uses them to compute a cell's
//     full-/partial-cover totals with four-corner lookups plus an exact
//     scan of the boundary bins, instead of re-integrating difference
//     arrays over the whole space (see DESIGN.md §2).
//
// When Options.Pyramid carries the dataset-level aggregate pyramid
// (pyramid.go), the whole layer is *bound* instead of built: the master
// order, contributions, certificate and SAT levels are aliased from the
// persistent per-composite structure and only the O(n) per-query parts
// (rectangle materialization, width ranges, accuracy merge walks) are
// recomputed, converting the per-query O(R log R) setup into amortized
// shared state (DESIGN.md §6).
//
// The SAT path is gated per channel by the *fixed-point certificate*:
// a channel participates when all of its contributions quantize
// losslessly onto a shared power-of-two grid (value · 2^shift is an
// integer for every contribution) and the channel's total absolute
// scaled mass stays within the exact summation headroom (Σ|v|·2^shift ≤
// 2^52). Under the certificate every float64 partial sum the
// difference-array fill can form is an integer multiple of 2^-shift
// with a ≤53-bit numerator — exactly representable — so channel sums
// are exact and independent of summation order, and the SAT can carry
// the channel as scaled int64, converting back only at cell-grid emit,
// bit-identical to the difference-array totals (the property tests
// assert this). Integer channels (fD, fC, fS/fA over integer values)
// pass trivially with shift 0; real-valued channels pass whenever the
// data lives on a dyadic grid (halves, quarters, float32-sourced
// values, …).
//
// Channels that fail the plain certificate get a second chance through
// the *two-float (compensated-sum) fallback*: each contribution v is
// split error-free into v = hi + lo, where hi is v rounded to a coarse
// power-of-two grid chosen from the channel's total mass and lo is the
// exact float64 remainder (Veltkamp-style splitting: the subtraction
// v − hi is exact because hi agrees with v in its leading bits). The hi
// parts live on a coarse dyadic grid with huge headroom, the lo parts
// are tiny with huge headroom, so BOTH halves pass the fixed-point
// certificate individually and ride the SAT as two exact int64 planes —
// the channel's grid totals become fl(Σhi + Σlo), one rounding of the
// exactly-represented true sum, identical in every fill path and
// independent of summation order. This is what lets decimal-grid
// (base-10) channels — 0.1-steped prices, percentages — use the fast
// path instead of the classic difference-array fallback. Two-float
// channels are "grid-exact" (order-free grid fills, sorting allowed)
// but not "plain-exact": the Fenwick mini-sweep keeps its naive
// accumulation for them, exactly like any real-valued channel.
//
// Channels that fail both certificates — full-mantissa reals,
// denormal-adjacent values, NaN/Inf — fall back to a difference-array
// pass restricted to just those channels, in unchanged master order, so
// mixed composites still get partial fast-path coverage and fully
// failing composites keep the pre-SAT behavior byte-for-byte.
//
// Min/max slots (fA components) do not telescope through prefix sums;
// they are served by an order-statistic companion over the same anchor
// bins: per-bin pre-reduced min/max behind a 2D sparse table
// (segtree.Sparse2D, O(1) rectangular range queries) over the
// certainly-partial bin regions, plus an exact scan of the boundary
// bins — min/max are order-independent, so the companion is usable
// regardless of the channel certificates.

// satMinIds is the rectangle count at which discretize switches from the
// per-rectangle difference-array fill to SAT lookups: the SAT fill costs
// O(cells · boundary-bin density) independent of the rectangle count, so
// it wins exactly on the large spaces near the root of the split tree.
// A variable so tests can force the SAT path onto small inputs.
var satMinIds = 2048

// maxScaledSum bounds a channel's total absolute scaled contribution
// mass under the fixed-point certificate. 2^52 leaves a factor-2 margin
// below float64's exact integer range (2^53), so every partial sum of
// the float difference-array path is exactly representable even after
// the float accumulation slack of the certificate's own Σ|v| estimate.
const maxScaledSum = 1 << 52

// maxShift caps the fixed-point scale exponent so the scaled int64
// contributions (and the certificate arithmetic) stay well-defined;
// denormal-adjacent values, which would need shifts near 1074, fail.
const maxShift = 62

// ---- SAT levels ----

// satLevel is one resolution of the summed-area-table hierarchy: 2D
// prefix sums of anchor counts and scaled channel contributions over a
// g×g bin grid, CSR per-bin id lists for the exact boundary scans, the
// order-statistic min/max companion, and the conservative threshold
// arrays that map coordinate predicates to bin ranges.
//
// The threshold arrays are *id-anchored*: xMaxUpTo[i] is the master id
// whose anchor attains the maximum anchor x over bin columns [0, i]
// (-1 while empty), and xMinFrom[i] the id attaining the minimum over
// columns [i, g). Queries compare the id's actual per-query coordinate
// (master[id].Rect.MinX) rather than stored bin geometry, which makes a
// level valid for any rigid translation of the anchor set: the
// dataset-level pyramid stores bins over object locations, and the same
// arrays bound the translated per-query anchors (MinX = x − a) exactly,
// because translation by a constant is monotone and preserves argmax /
// argmin. Lookups are O(log g) binary searches — the "pyramid lookup" —
// and every interior/exterior claim they certify is conservative; the
// exact boundary-bin scan owns whatever the certification leaves
// uncertain, so cell totals depend only on the true predicate sets, not
// on the bin geometry or level choice.
type satLevel struct {
	gx, gy int
	bw, bh float64 // bin extents in stored space (level selection only)

	sat      []int64 // (gx+1)*(gy+1)*(eff+1) prefix sums; plane 0 = count
	binStart []int32 // gx*gy+1 CSR offsets
	binIds   []int32 // master ids grouped by bin, ascending within a bin

	xMaxUpTo, xMinFrom []int32 // len gx, id-anchored prefix extremes (x)
	yMaxUpTo, yMinFrom []int32 // len gy, id-anchored prefix extremes (y)

	mm    segtree.Sparse2D // order-statistic min/max companion
	hasMM bool

	eff int // channel planes carried by sat (excluding the count plane)
}

// xBinLE returns the largest h in [0, gx] such that every anchor in bin
// columns [0, h) certainly has MinX ≤ x (or MinX < x when strict).
func (l *satLevel) xBinLE(master []asp.RectObject, x float64, strict bool) int {
	return sort.Search(l.gx, func(i int) bool {
		id := l.xMaxUpTo[i]
		if id < 0 {
			return false // empty prefix: vacuously below any threshold
		}
		v := master[id].Rect.MinX
		if strict {
			return v >= x
		}
		return v > x
	})
}

// xBinGT returns the smallest h in [0, gx] such that every anchor in
// bin columns [h, gx) certainly has MinX > x (or MinX ≥ x when orEq).
func (l *satLevel) xBinGT(master []asp.RectObject, x float64, orEq bool) int {
	return sort.Search(l.gx, func(i int) bool {
		id := l.xMinFrom[i]
		if id < 0 {
			return true // empty suffix: vacuously above any threshold
		}
		v := master[id].Rect.MinX
		if orEq {
			return v >= x
		}
		return v > x
	})
}

// yBinLE / yBinGT mirror the x variants over bin rows and MinY.
func (l *satLevel) yBinLE(master []asp.RectObject, y float64, strict bool) int {
	return sort.Search(l.gy, func(i int) bool {
		id := l.yMaxUpTo[i]
		if id < 0 {
			return false
		}
		v := master[id].Rect.MinY
		if strict {
			return v >= y
		}
		return v > y
	})
}

func (l *satLevel) yBinGT(master []asp.RectObject, y float64, orEq bool) int {
	return sort.Search(l.gy, func(i int) bool {
		id := l.yMinFrom[i]
		if id < 0 {
			return true
		}
		v := master[id].Rect.MinY
		if orEq {
			return v >= y
		}
		return v > y
	})
}

// satRegion adds the count+channel totals of anchors in bins
// [i0,i1)×[j0,j1) into out (length eff+1, scaled int64) via a
// four-corner lookup.
func (l *satLevel) satRegion(i0, i1, j0, j1 int, out []int64) {
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > l.gx {
		i1 = l.gx
	}
	if j1 > l.gy {
		j1 = l.gy
	}
	if i0 >= i1 || j0 >= j1 {
		return
	}
	C := l.eff + 1
	w := l.gx + 1
	a := (j1*w + i1) * C
	b := (j0*w + i1) * C
	c := (j1*w + i0) * C
	d := (j0*w + i0) * C
	for ch := 0; ch < C; ch++ {
		out[ch] += l.sat[a+ch] - l.sat[b+ch] - l.sat[c+ch] + l.sat[d+ch]
	}
}

// countRegion returns the number of anchors in bins [i0,i1)×[j0,j1)
// via a four-corner lookup on the count plane.
func (l *satLevel) countRegion(i0, i1, j0, j1 int) int64 {
	if i0 < 0 {
		i0 = 0
	}
	if j0 < 0 {
		j0 = 0
	}
	if i1 > l.gx {
		i1 = l.gx
	}
	if j1 > l.gy {
		j1 = l.gy
	}
	if i0 >= i1 || j0 >= j1 {
		return 0
	}
	C := l.eff + 1
	w := l.gx + 1
	return l.sat[(j1*w+i1)*C] - l.sat[(j0*w+i1)*C] - l.sat[(j1*w+i0)*C] + l.sat[(j0*w+i0)*C]
}

// buildSATLevel fills l with a g×g bin grid over the stored anchor
// coordinates xs/ys (aligned with master ids 0..n-1), the scaled
// channel planes, the id-anchored threshold arrays, and — when
// mmSlots > 0 — the min/max companion. Slabs are reused across builds.
func buildSATLevel(l *satLevel, g int, xs, ys []float64, eff int,
	cOff []int32, contribs []agg.Contrib, contribsI []int64,
	mOff []int32, mms []agg.MMContrib, mmSlots int) {
	n := len(xs)
	l.gx, l.gy = g, g
	l.eff = eff

	bx0, by0 := math.Inf(1), math.Inf(1)
	bx1, by1 := math.Inf(-1), math.Inf(-1)
	for i := 0; i < n; i++ {
		if xs[i] < bx0 {
			bx0 = xs[i]
		}
		if xs[i] > bx1 {
			bx1 = xs[i]
		}
		if ys[i] < by0 {
			by0 = ys[i]
		}
		if ys[i] > by1 {
			by1 = ys[i]
		}
	}
	l.bw = (bx1 - bx0) / float64(g)
	l.bh = (by1 - by0) / float64(g)
	if !(l.bw > 0) {
		l.bw = 1
	}
	if !(l.bh > 0) {
		l.bh = 1
	}
	binx := func(x float64) int {
		v := int((x - bx0) / l.bw)
		if v < 0 {
			v = 0
		}
		if v >= g {
			v = g - 1
		}
		return v
	}
	biny := func(y float64) int {
		v := int((y - by0) / l.bh)
		if v < 0 {
			v = 0
		}
		if v >= g {
			v = g - 1
		}
		return v
	}

	// CSR bins via counting sort (stable: ids ascend within each bin).
	nb := g * g
	l.binStart = resizeInt32(l.binStart, nb+1)
	for i := range l.binStart {
		l.binStart[i] = 0
	}
	for i := 0; i < n; i++ {
		l.binStart[biny(ys[i])*g+binx(xs[i])+1]++
	}
	for b := 0; b < nb; b++ {
		l.binStart[b+1] += l.binStart[b]
	}
	l.binIds = resizeInt32(l.binIds, n)
	fill := append([]int32(nil), l.binStart[:nb]...)
	for i := 0; i < n; i++ {
		b := biny(ys[i])*g + binx(xs[i])
		l.binIds[fill[b]] = int32(i)
		fill[b]++
	}

	// Id-anchored threshold arrays: per-column / per-row extreme anchor,
	// then prefix-max / suffix-min runs.
	l.xMaxUpTo = resizeInt32(l.xMaxUpTo, g)
	l.xMinFrom = resizeInt32(l.xMinFrom, g)
	l.yMaxUpTo = resizeInt32(l.yMaxUpTo, g)
	l.yMinFrom = resizeInt32(l.yMinFrom, g)
	colMax := l.xMaxUpTo
	colMin := l.xMinFrom
	rowMax := l.yMaxUpTo
	rowMin := l.yMinFrom
	for i := 0; i < g; i++ {
		colMax[i], colMin[i], rowMax[i], rowMin[i] = -1, -1, -1, -1
	}
	for i := 0; i < n; i++ {
		bi, bj := binx(xs[i]), biny(ys[i])
		if colMax[bi] < 0 || xs[i] > xs[colMax[bi]] {
			colMax[bi] = int32(i)
		}
		if colMin[bi] < 0 || xs[i] < xs[colMin[bi]] {
			colMin[bi] = int32(i)
		}
		if rowMax[bj] < 0 || ys[i] > ys[rowMax[bj]] {
			rowMax[bj] = int32(i)
		}
		if rowMin[bj] < 0 || ys[i] < ys[rowMin[bj]] {
			rowMin[bj] = int32(i)
		}
	}
	run := int32(-1)
	for i := 0; i < g; i++ {
		if colMax[i] >= 0 && (run < 0 || xs[colMax[i]] > xs[run]) {
			run = colMax[i]
		}
		colMax[i] = run
	}
	run = -1
	for i := g - 1; i >= 0; i-- {
		if colMin[i] >= 0 && (run < 0 || xs[colMin[i]] < xs[run]) {
			run = colMin[i]
		}
		colMin[i] = run
	}
	run = -1
	for i := 0; i < g; i++ {
		if rowMax[i] >= 0 && (run < 0 || ys[rowMax[i]] > ys[run]) {
			run = rowMax[i]
		}
		rowMax[i] = run
	}
	run = -1
	for i := g - 1; i >= 0; i-- {
		if rowMin[i] >= 0 && (run < 0 || ys[rowMin[i]] < ys[run]) {
			run = rowMin[i]
		}
		rowMin[i] = run
	}

	// Prefix-summed count+channel grid: sat[(j*(g+1)+i)*C+c] holds the
	// totals of anchors in bins [0,i)×[0,j); plane 0 is the anchor count,
	// planes 1..eff the certified channels as scaled int64 (failing
	// channels stay zero). Integer arithmetic, so the prefix telescoping
	// and four-corner differences are exact by construction.
	C := eff + 1
	w := g + 1
	l.sat = resizeI64(l.sat, w*w*C)
	for i := range l.sat {
		l.sat[i] = 0
	}
	for i := 0; i < n; i++ {
		bi, bj := binx(xs[i]), biny(ys[i])
		at := ((bj+1)*w + bi + 1) * C
		l.sat[at]++
		cbs := contribs[cOff[i]:cOff[i+1]]
		scaled := contribsI[cOff[i]:cOff[i+1]]
		for k := range cbs {
			l.sat[at+1+cbs[k].Ch] += scaled[k]
		}
	}
	for j := 0; j <= g; j++ {
		row := j * w * C
		for i := 1; i <= g; i++ {
			a := row + i*C
			for c := 0; c < C; c++ {
				l.sat[a+c] += l.sat[a-C+c]
			}
		}
	}
	for j := 1; j <= g; j++ {
		cur := j * w * C
		prev := cur - w*C
		for i := 0; i < w*C; i++ {
			l.sat[cur+i] += l.sat[prev+i]
		}
	}

	// Order-statistic companion: per-bin pre-reduced min/max slot values
	// behind a 2D sparse table, queried by the fast fill over the
	// certainly-partial bin regions of each cell.
	l.hasMM = mmSlots > 0
	if l.hasMM {
		l.mm.Reset(g, g, mmSlots)
		for i := 0; i < n; i++ {
			bi, bj := binx(xs[i]), biny(ys[i])
			for _, m := range mms[mOff[i]:mOff[i+1]] {
				l.mm.Fold(bj, bi, m.Slot, m.V)
			}
		}
		l.mm.Build()
	}
}

// tables is the per-query aggregation layer described above. It is built
// by newSearcher and shared read-only by all kernel workers; the lazily
// built SAT level is protected by satMu. With a pyramid bound the level
// slices alias the persistent per-composite structure (shared == true).
type tables struct {
	f     *agg.Composite
	chans int // logical channels (f.Channels())
	eff   int // grid channels including two-float shadow planes

	sorted bool // master order is (MinX, MinY); windows are usable

	// Certificates (see the package note). Indexed by eff channel;
	// two-float channels occupy their logical slot (hi part) plus a
	// shadow slot in [chans, eff) (lo part); twoOf maps logical channel
	// -> shadow slot or -1. allExact = every channel plainly certified
	// (gates the fixed-point mini-sweep); sortExact = every channel
	// plainly or two-float certified (gates the master sort, windows,
	// and full SAT coverage); anyExact gates the SAT fast path at all.
	chOK      []bool
	chScale   []float64
	chInv     []float64
	twoOf     []int32
	twoCount  int
	allExact  bool
	sortExact bool
	anyExact  bool
	contribsI []int64
	certShift []int // certificate scratch (slab reuse)
	certSum   []float64
	certOK    []bool
	certTwo   []twoState
	certCands []twoCand

	// CSR of the contributions on channels that FAIL both certificates
	// (built only for mixed composites): the hybrid fill's
	// difference-array pass iterates these instead of filtering
	// contribs per rect.
	cOffF     []int32
	contribsF []agg.Contrib

	wmin, wmax float64 // range of rect widths (MaxX-MinX) over the master set
	hmin, hmax float64

	minXs    []float64 // master[i].Rect.MinX, aligned with master order (may alias a Prepared)
	minXsBuf []float64 // owned backing slab for minXs when not aliased

	// Flattened channel contributions in eff space: master[i] contributes
	// contribs[cOff[i]:cOff[i+1]]; likewise mm contributions.
	cOff     []int32
	contribs []agg.Contrib
	mOff     []int32
	mms      []agg.MMContrib

	// Accuracy scratch (kept for slab reuse).
	axs, bxs []float64

	// SAT hierarchy. With a pyramid bound, lvls aliases the pyramid's
	// prebuilt levels (fine -> coarse); otherwise ensureLevels lazily
	// builds the single query-level ownLvl. minYs is build scratch.
	satMu    sync.Mutex
	satBuilt atomic.Bool // lock-free fast path for per-cell callers
	lvls     []*satLevel
	ownLvl   satLevel
	minYs    []float64

	// shared marks slices aliased from a Pyramid: reset must drop them
	// instead of truncating, or later classic builds would append into
	// the pyramid's read-only memory.
	shared bool
	pyr    *Pyramid

	// Retained heavy per-query scratch, recycled across queries through
	// the SlabCache: the permuted master copy (pyramid binds), the
	// per-worker discretization grids, sweep solvers and worker buffers.
	// Keys record the shape they were built for.
	masterBuf                           []asp.RectObject
	grids                               []gridBuffers
	gridNW, gridNCol, gridNRow, gridEff int
	gridF                               *agg.Composite
	sweepPool                           []sweep.Solver
	sweepN, sweepCap                    int
	sweepF                              *agg.Composite
	scratchF                            []float64
	scratchCells                        []cellInfo
	scratchRects                        []asp.RectObject

	// Recycled id slices handed back by a released Searcher (slab reuse
	// across Engine queries).
	idFree [][]int32
}

// reset prepares a recycled tables value for a new query, keeping every
// slice's capacity (the quantization-certificate and SAT slabs ride the
// SlabCache across queries on the same composite).
func (t *tables) reset() {
	t.satBuilt.Store(false)
	t.lvls = t.lvls[:0]
	t.pyr = nil
	t.twoCount = 0
	t.minXs = nil // a view of minXsBuf or a Prepared's shared array
	if t.shared {
		// Aliased pyramid/prepared memory: drop, never truncate.
		t.shared = false
		t.cOff, t.contribs, t.contribsI = nil, nil, nil
		t.mOff, t.mms = nil, nil
		t.cOffF, t.contribsF = nil, nil
		t.chOK, t.chScale, t.chInv, t.twoOf = nil, nil, nil, nil
		return
	}
	t.cOff = t.cOff[:0]
	t.contribs = t.contribs[:0]
	t.mOff = t.mOff[:0]
	t.mms = t.mms[:0]
	t.contribsI = t.contribsI[:0]
	t.cOffF = t.cOffF[:0]
	t.contribsF = t.contribsF[:0]
}

// buildTables constructs the layer over master for the composite f.
// When own is true the master slice may be re-sorted in place; otherwise
// a sorted copy is made if sorting is called for. It returns the master
// actually used (== the input unless a copy was needed).
func buildTables(t *tables, master []asp.RectObject, f *agg.Composite, own bool) []asp.RectObject {
	t.f = f
	t.chans = f.Channels()

	if cap(t.cOff) < len(master)+1 {
		// Pre-size the slab arrays: the flatten/accuracy passes would
		// otherwise each pay ~2x their final size in append-doubling
		// churn, which dominates the per-query allocation profile.
		t.cOff = make([]int32, 0, len(master)+1)
		t.contribs = make([]agg.Contrib, 0, len(master)+len(master)/4)
		t.axs = make([]float64, 0, len(master))
		t.bxs = make([]float64, 0, len(master))
	}

	// Pass 1: extent ranges and contribution flattening in current order.
	t.measureExtents(master)
	t.flattenContribs(master)
	t.computeCertificate()
	if t.twoCount > 0 {
		// The certificate added shadow channels; re-flatten so the
		// contribution tables carry the split (hi, lo) pairs.
		t.flattenContribs(master)
	}

	// Grid-exact composites get the sorted master (and with it the
	// window and probe machinery). Sorting reorders float summation,
	// which is harmless exactly when every grid sum is order-free — what
	// the plain and two-float certificates jointly guarantee.
	t.sorted = false
	if t.sortExact && len(master) > 1 {
		if !sort.SliceIsSorted(master, func(a, b int) bool {
			ra, rb := &master[a].Rect, &master[b].Rect
			if ra.MinX != rb.MinX {
				return ra.MinX < rb.MinX
			}
			return ra.MinY < rb.MinY
		}) {
			if !own {
				master = append([]asp.RectObject(nil), master...)
			}
			sort.Slice(master, func(a, b int) bool {
				ra, rb := &master[a].Rect, &master[b].Rect
				if ra.MinX != rb.MinX {
					return ra.MinX < rb.MinX
				}
				return ra.MinY < rb.MinY
			})
			t.flattenContribs(master) // realign with the new order
		}
		t.sorted = true
	} else if t.sortExact {
		t.sorted = true // 0- and 1-element masters are trivially sorted
	}
	t.scaleContribs()
	t.fillMinXs(master)
	return master
}

// fillMinXs (re)derives the sorted-order MinX array into the owned slab.
func (t *tables) fillMinXs(master []asp.RectObject) {
	t.minXsBuf = t.minXsBuf[:0]
	for i := range master {
		t.minXsBuf = append(t.minXsBuf, master[i].Rect.MinX)
	}
	t.minXs = t.minXsBuf
}

// measureExtents records the width/height ranges of the master set.
func (t *tables) measureExtents(master []asp.RectObject) {
	t.wmin, t.wmax = math.Inf(1), math.Inf(-1)
	t.hmin, t.hmax = math.Inf(1), math.Inf(-1)
	for i := range master {
		r := &master[i].Rect
		if w := r.MaxX - r.MinX; true {
			if w < t.wmin {
				t.wmin = w
			}
			if w > t.wmax {
				t.wmax = w
			}
		}
		if h := r.MaxY - r.MinY; true {
			if h < t.hmin {
				t.hmin = h
			}
			if h > t.hmax {
				t.hmax = h
			}
		}
	}
}

// fracBits returns the number of binary fraction bits of v — the
// smallest k with v·2^k integral — or a value above maxShift when v is
// unquantizable within the certificate's budget (denormals would need
// shifts near 1074; NaN/Inf never quantize).
func fracBits(v float64) int {
	if v == 0 {
		return 0
	}
	b := math.Float64bits(v)
	exp := int(b>>52) & 0x7ff
	frac := b & (1<<52 - 1)
	switch exp {
	case 0x7ff: // Inf/NaN
		return maxShift + 1
	case 0: // denormal: v = frac·2^-1074
		return 1074 - bits.TrailingZeros64(frac)
	}
	// v = (2^52 | frac) · 2^(exp-1075).
	fb := 1075 - exp - bits.TrailingZeros64(frac|1<<52)
	if fb < 0 {
		return 0
	}
	return fb
}

// twoSplit is the error-free splitting used by the two-float fallback:
// hi is v rounded to the nearest multiple of 2^-sHi, lo the remainder.
// Both operations are exact when the certificate's guards hold
// (|v|·2^sHi ≤ 2^52 keeps the rounded integer exact; v and hi agree in
// their leading bits, so the subtraction is exact à la Sterbenz).
func twoSplit(v, scaleHi, invHi float64) (hi, lo float64) {
	hi = math.RoundToEven(v*scaleHi) * invHi
	return hi, v - hi
}

// twoState is the per-channel accumulator of the two-float
// certification pass; twoCand a channel that passed it. Both live on
// retained tables scratch so the per-query classic build allocates
// nothing here.
type twoState struct {
	scaleHi, invHi float64
	sumHi, sumLo   float64
	fbLo           int
	ok             bool
}

type twoCand struct {
	ch             int
	scaleHi, invHi float64
	scaleLo, invLo float64
}

// computeCertificate derives the per-channel fixed-point certificates
// from the flattened contributions: first the plain certificate (the
// shared power-of-two shift and the headroom check Σ|v|·2^shift ≤
// 2^52), then the two-float fallback for channels the plain pass
// rejects. Channels with no contributions pass trivially with shift 0.
// On exit chOK/chScale/chInv cover the eff channel space (logical
// channels plus one shadow per two-float channel) and twoOf maps each
// logical channel to its shadow slot (-1 for none).
func (t *tables) computeCertificate() {
	c := t.chans
	if cap(t.certShift) < c {
		t.certShift = make([]int, c)
		t.certSum = make([]float64, c)
	}
	if cap(t.twoOf) < c {
		t.twoOf = make([]int32, c)
	}
	t.twoOf = t.twoOf[:c]
	shift := t.certShift[:c]
	sumAbs := t.certSum[:c]
	for ch := range shift {
		shift[ch] = 0
		sumAbs[ch] = 0
		t.twoOf[ch] = -1
	}
	for i := range t.contribs {
		cb := &t.contribs[i]
		if fb := fracBits(cb.V); fb > shift[cb.Ch] {
			shift[cb.Ch] = fb
		}
		sumAbs[cb.Ch] += math.Abs(cb.V)
	}

	// Plain pass. plainOK is computed into retained scratch first because
	// the two-float pass below needs per-channel outcomes before the eff
	// layout (and with it chOK's final length) is known.
	if cap(t.certOK) < c {
		t.certOK = make([]bool, c)
	}
	plainOK := t.certOK[:c]
	cands := t.certCands[:0]
	for ch := 0; ch < c; ch++ {
		ok := shift[ch] <= maxShift
		if ok {
			ok = sumAbs[ch]*math.Ldexp(1, shift[ch]) <= maxScaledSum
		}
		plainOK[ch] = ok
	}

	// Two-float fallback for failing channels: choose each channel's hi
	// grid from its total mass, then verify — in ONE pass over the
	// flattened contributions, not one per channel — that every value
	// splits exactly and both halves fit their headroom.
	var states []twoState
	pending := 0
	for ch := 0; ch < c; ch++ {
		if plainOK[ch] || sumAbs[ch] == 0 ||
			math.IsInf(sumAbs[ch], 0) || math.IsNaN(sumAbs[ch]) {
			continue
		}
		_, e := math.Frexp(sumAbs[ch]) // sumAbs < 2^e
		sHi := 51 - e
		if sHi > maxShift {
			sHi = maxShift
		}
		if sHi < -1000 {
			continue
		}
		if states == nil {
			if cap(t.certTwo) < c {
				t.certTwo = make([]twoState, c)
			}
			states = t.certTwo[:c]
			for i := range states {
				states[i] = twoState{}
			}
		}
		states[ch] = twoState{
			scaleHi: math.Ldexp(1, sHi),
			invHi:   math.Ldexp(1, -sHi),
			ok:      true,
		}
		pending++
	}
	if pending > 0 {
		for i := range t.contribs {
			cb := &t.contribs[i]
			st := &states[cb.Ch]
			if !st.ok {
				continue
			}
			hi, lo := twoSplit(cb.V, st.scaleHi, st.invHi)
			if hi+lo != cb.V || math.IsNaN(hi) || math.IsInf(hi, 0) {
				st.ok = false
				continue
			}
			st.sumHi += math.Abs(hi)
			st.sumLo += math.Abs(lo)
			if fb := fracBits(lo); fb > st.fbLo {
				st.fbLo = fb
			}
		}
		for ch := 0; ch < c; ch++ {
			st := &states[ch]
			if !st.ok || st.scaleHi == 0 {
				continue
			}
			if st.fbLo > maxShift ||
				st.sumHi*st.scaleHi > maxScaledSum || st.sumLo*math.Ldexp(1, st.fbLo) > maxScaledSum {
				continue
			}
			cands = append(cands, twoCand{
				ch:      ch,
				scaleHi: st.scaleHi, invHi: st.invHi,
				scaleLo: math.Ldexp(1, st.fbLo), invLo: math.Ldexp(1, -st.fbLo),
			})
		}
	}

	t.twoCount = len(cands)
	t.eff = c + t.twoCount
	if cap(t.chOK) < t.eff {
		t.chOK = make([]bool, t.eff)
		t.chScale = make([]float64, t.eff)
		t.chInv = make([]float64, t.eff)
	}
	t.chOK = t.chOK[:t.eff]
	t.chScale = t.chScale[:t.eff]
	t.chInv = t.chInv[:t.eff]
	for ch := 0; ch < c; ch++ {
		t.chOK[ch] = plainOK[ch]
		if plainOK[ch] {
			t.chScale[ch] = math.Ldexp(1, shift[ch])
			t.chInv[ch] = math.Ldexp(1, -shift[ch])
		} else {
			t.chScale[ch], t.chInv[ch] = 1, 1
		}
	}
	for k, cd := range cands {
		sh := c + k
		t.twoOf[cd.ch] = int32(sh)
		t.chOK[cd.ch] = true
		t.chScale[cd.ch], t.chInv[cd.ch] = cd.scaleHi, cd.invHi
		t.chOK[sh] = true
		t.chScale[sh], t.chInv[sh] = cd.scaleLo, cd.invLo
	}

	t.allExact, t.sortExact, t.anyExact = true, true, false
	for ch := 0; ch < c; ch++ {
		t.allExact = t.allExact && plainOK[ch]
		t.sortExact = t.sortExact && t.chOK[ch]
		t.anyExact = t.anyExact || t.chOK[ch]
	}
	t.certCands = cands[:0] // retain capacity for the next build
}

// scaleContribs materializes the scaled int64 contributions (aligned
// with contribs, valid wherever chOK) and, for mixed composites, the
// failing-channel CSR the hybrid fill's difference-array pass iterates.
// Must run after any master re-sort so the alignment holds.
func (t *tables) scaleContribs() {
	if !t.anyExact {
		return
	}
	if cap(t.contribsI) < len(t.contribs) {
		t.contribsI = make([]int64, 0, cap(t.contribs))
	}
	t.contribsI = t.contribsI[:len(t.contribs)]
	for i := range t.contribs {
		cb := &t.contribs[i]
		if t.chOK[cb.Ch] {
			// Exact: cb.V is an integer multiple of 2^-shift with a
			// ≤52-bit numerator, and the power-of-two multiply only
			// shifts the exponent.
			t.contribsI[i] = int64(cb.V * t.chScale[cb.Ch])
		} else {
			t.contribsI[i] = 0
		}
	}
	if t.sortExact {
		t.cOffF = t.cOffF[:0]
		t.contribsF = t.contribsF[:0]
		return
	}
	t.cOffF = append(t.cOffF[:0], 0)
	t.contribsF = t.contribsF[:0]
	n := len(t.cOff) - 1
	for i := 0; i < n; i++ {
		for _, cb := range t.contribs[t.cOff[i]:t.cOff[i+1]] {
			if !t.chOK[cb.Ch] {
				t.contribsF = append(t.contribsF, cb)
			}
		}
		t.cOffF = append(t.cOffF, int32(len(t.contribsF)))
	}
}

// rectFailContribs returns master[id]'s contributions on channels that
// failed both certificates (mixed composites only).
func (t *tables) rectFailContribs(id int32) []agg.Contrib {
	return t.contribsF[t.cOffF[id]:t.cOffF[id+1]]
}

// rectContribsI returns master[id]'s scaled int64 contributions,
// aligned with rectContribs (entries on failing channels are zero).
func (t *tables) rectContribsI(id int32) []int64 {
	return t.contribsI[t.cOff[id]:t.cOff[id+1]]
}

// flattenContribs (re)fills the per-rect contribution tables in master
// order. After computeCertificate has registered two-float channels
// (twoCount > 0), each contribution on such a channel is split in place
// into its hi part (logical slot) plus an appended lo part (shadow
// slot), so every consumer of the flattened tables sees the eff-space
// layout.
func (t *tables) flattenContribs(master []asp.RectObject) {
	t.cOff = append(t.cOff[:0], 0)
	t.contribs = t.contribs[:0]
	for i := range master {
		start := len(t.contribs)
		t.contribs = t.f.AppendContribs(master[i].Obj, t.contribs)
		if t.twoCount > 0 {
			end := len(t.contribs)
			for k := start; k < end; k++ {
				cb := &t.contribs[k]
				if sh := t.twoOf[cb.Ch]; sh >= 0 {
					hi, lo := twoSplit(cb.V, t.chScale[cb.Ch], t.chInv[cb.Ch])
					cb.V = hi
					t.contribs = append(t.contribs, agg.Contrib{Ch: int(sh), V: lo})
				}
			}
		}
		t.cOff = append(t.cOff, int32(len(t.contribs)))
	}
	if t.f.MinMaxSlots() > 0 {
		t.mOff = append(t.mOff[:0], 0)
		t.mms = t.mms[:0]
		for i := range master {
			t.mms = t.f.AppendMM(master[i].Obj, t.mms)
			t.mOff = append(t.mOff, int32(len(t.mms)))
		}
	}
}

// fold collapses an eff-space cell vector into the logical channel
// space: two-float channels get their shadow (lo) plane added onto the
// hi plane — one rounding of the exactly represented true sum — and
// plain channels pass through. Returns src itself when there is nothing
// to fold, so the common case costs nothing.
func (t *tables) fold(dst, src []float64) []float64 {
	if t.twoCount == 0 {
		return src
	}
	dst = dst[:t.chans]
	copy(dst, src[:t.chans])
	for ch, sh := range t.twoOf {
		if sh >= 0 {
			dst[ch] += src[sh]
		}
	}
	return dst
}

// rectContribs returns master[id]'s flattened channel contributions.
func (t *tables) rectContribs(id int32) []agg.Contrib {
	return t.contribs[t.cOff[id]:t.cOff[id+1]]
}

// rectMM returns master[id]'s flattened min/max contributions.
func (t *tables) rectMM(id int32) []agg.MMContrib {
	return t.mms[t.mOff[id]:t.mOff[id+1]]
}

// satUsable reports whether discretize may use the SAT-backed fast
// fill: at least one channel must carry a certificate (counts and the
// min/max companion then ride along; channels that failed are filled by
// the hybrid difference-array pass in unchanged master order).
// Composites whose every channel fails keep the classic
// difference-array path, byte-for-byte the pre-SAT behavior.
func (t *tables) satUsable() bool { return t.anyExact }

// accuracy computes the Definition 7 GPS accuracies: the minimum
// separation of the distinct x (resp. y) edge coordinates. The edge
// multiset {MinX} ∪ {MaxX} is enumerated in sorted order by merging two
// sorted halves, so the result is bit-identical to sorting the combined
// multiset (the pre-SAT geom.ComputeAccuracy path) at half the sort work
// and none of the allocation.
func (t *tables) accuracy(master []asp.RectObject) geom.Accuracy {
	t.axs = t.axs[:0]
	t.bxs = t.bxs[:0]
	for i := range master {
		t.axs = append(t.axs, master[i].Rect.MinX)
		t.bxs = append(t.bxs, master[i].Rect.MaxX)
	}
	if !t.sorted {
		sort.Float64s(t.axs)
	}
	sort.Float64s(t.bxs)
	dx := minGapMerged(t.axs, t.bxs)
	t.axs = t.axs[:0]
	t.bxs = t.bxs[:0]
	for i := range master {
		t.axs = append(t.axs, master[i].Rect.MinY)
		t.bxs = append(t.bxs, master[i].Rect.MaxY)
	}
	sort.Float64s(t.axs)
	sort.Float64s(t.bxs)
	dy := minGapMerged(t.axs, t.bxs)
	return geom.Accuracy{DX: dx, DY: dy}
}

// minGapMerged returns the smallest positive gap between consecutive
// values of the merged sorted sequences a and b (+Inf when no positive
// gap exists).
func minGapMerged(a, b []float64) float64 {
	min := math.Inf(1)
	prev := math.NaN()
	ai, bi := 0, 0
	for ai < len(a) || bi < len(b) {
		var v float64
		if bi >= len(b) || (ai < len(a) && a[ai] <= b[bi]) {
			v = a[ai]
			ai++
		} else {
			v = b[bi]
			bi++
		}
		if d := v - prev; !math.IsNaN(prev) && d > 0 && d < min {
			min = d
		}
		prev = v
	}
	return min
}

// windowLo returns the first master index whose MinX exceeds x
// (binary search over the sorted minXs).
func (t *tables) windowLo(x float64) int {
	return sort.Search(len(t.minXs), func(i int) bool { return t.minXs[i] > x })
}

// windowHi returns the first master index whose MinX is >= x.
func (t *tables) windowHi(x float64) int {
	return sort.SearchFloat64s(t.minXs, x)
}

// window returns the [lo, hi) master index range that must contain every
// rectangle whose open interior intersects the open x-range (x0, x1):
// such a rectangle has MinX < x1 and MaxX > x0, hence MinX > x0 - wmax.
func (t *tables) window(x0, x1 float64) (int, int) {
	lo := t.windowLo(x0 - t.wmax)
	hi := t.windowHi(x1)
	if lo > hi {
		lo = hi
	}
	return lo, hi
}

// ---- SAT level management ----

// satGrid picks the bin granularity for n anchors.
func satGrid(n int) int {
	g := int(math.Sqrt(float64(n)))
	if g < 8 {
		g = 8
	}
	if g > 128 {
		g = 128
	}
	return g
}

// ensureLevels lazily provides the SAT hierarchy. With a pyramid bound
// the levels were aliased at construction and this is a no-op; otherwise
// one query-level SAT is built over the master anchors on first demand.
// Many queries never pop a space large enough to want it, so the build
// cost is deferred to the first large discretization. Safe for
// concurrent workers; the build result is deterministic, so it does not
// matter which worker wins the race for the lock.
func (t *tables) ensureLevels(master []asp.RectObject) {
	if t.satBuilt.Load() {
		return
	}
	t.satMu.Lock()
	defer t.satMu.Unlock()
	if t.satBuilt.Load() {
		return
	}
	n := len(master)
	if cap(t.minYs) < n {
		t.minYs = make([]float64, 0, n)
	}
	t.minYs = t.minYs[:0]
	for i := range master {
		t.minYs = append(t.minYs, master[i].Rect.MinY)
	}
	mmSlots := t.f.MinMaxSlots()
	buildSATLevel(&t.ownLvl, satGrid(n), t.minXs, t.minYs, t.eff,
		t.cOff, t.contribs, t.contribsI, t.mOff, t.mms, mmSlots)
	t.lvls = append(t.lvls[:0], &t.ownLvl)
	t.satBuilt.Store(true)
}

// spaceDensity estimates the anchor density of the space's anchor box —
// the (MinX, MinY) region that can hold anchors of rectangles touching
// the space — by reading the finest level's count plane (an O(1)
// four-corner lookup). Using the measured local count instead of the
// global average matters on clustered corpora, where the interesting
// spaces sit at densities orders of magnitude above the mean.
func (t *tables) spaceDensity(master []asp.RectObject, space geom.Rect) float64 {
	l := t.lvls[0]
	i0 := l.xBinLE(master, space.MinX-t.wmax, true)
	i1 := l.xBinGT(master, space.MaxX, true)
	j0 := l.yBinLE(master, space.MinY-t.hmax, true)
	j1 := l.yBinGT(master, space.MaxY, true)
	if i0 >= i1 || j0 >= j1 {
		return 0
	}
	cnt := l.countRegion(i0, i1, j0, j1)
	area := float64(i1-i0) * l.bw * float64(j1-j0) * l.bh
	if !(area > 0) {
		return 0
	}
	return float64(cnt) / area
}

// levelCost estimates the SAT-fill work for one discretization at this
// level: per cell, the boundary ring is a band of ~one bin around the
// anchor box, so it holds ≈ ρ·(bw·boxH + bh·boxW) anchors (ρ = local
// anchor density) spread over ≈ boxH/bh + boxW/bw bins, all doubled for
// the full + overlap rings, plus a constant per cell for the binary
// searches and four-corner lookups. The constants weight an anchor test
// against a bin visit (an anchor test walks contributions; a bin visit
// is two loads).
func (t *tables) levelCost(l *satLevel, rho float64, ncol, nrow int, cw, chh float64) float64 {
	boxW := cw + t.wmax - t.wmin + 2*l.bw
	boxH := chh + t.hmax - t.hmin + 2*l.bh
	ringAnchors := rho * 2 * (l.bw*boxH + l.bh*boxW)
	ringBins := 2 * (boxH/l.bh + boxW/l.bw)
	perCell := 2*(2*ringAnchors+0.3*ringBins) + 16
	return float64(ncol*nrow) * perCell
}

// pickLevel selects the SAT resolution for a discretization of the
// space with cell extents (cw, chh): the level whose estimated ring
// work is smallest, and that estimate (for the caller's
// SAT-vs-difference-array decision). Any level yields bit-identical
// fills — the threshold certification is conservative and the ring scan
// exact — so this is purely a performance choice, and it depends only
// on deterministic quantities, so the answer trajectory stays
// reproducible.
func (t *tables) pickLevel(master []asp.RectObject, space geom.Rect, ncol, nrow int, cw, chh float64) (*satLevel, float64) {
	rho := t.spaceDensity(master, space)
	best := t.lvls[0]
	bestCost := t.levelCost(best, rho, ncol, nrow, cw, chh)
	for _, l := range t.lvls[1:] {
		if c := t.levelCost(l, rho, ncol, nrow, cw, chh); c < bestCost {
			best, bestCost = l, c
		}
	}
	return best, bestCost
}

// diffCost estimates the difference-array fill's work for a subset of
// the given size: each rectangle range-adds its contributions at four
// corners, plus the prefix integration over the padded grid.
func (t *tables) diffCost(ids, ncol, nrow int) float64 {
	avgContribs := 1.0
	if n := len(t.cOff) - 1; n > 0 {
		avgContribs = float64(len(t.contribs)) / float64(n)
	}
	return float64(ids)*(4*avgContribs+8) + float64((ncol+1)*(nrow+1)*(t.eff+1))
}

// resizeInt32 returns a slice of length n reusing capacity.
func resizeInt32(v []int32, n int) []int32 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int32, n)
}

// resizeI64 returns a slice of length n reusing capacity.
func resizeI64(v []int64, n int) []int64 {
	if cap(v) >= n {
		return v[:n]
	}
	return make([]int64, n)
}

// ---- Slab cache ----

// SlabCache recycles the per-query table slabs (sorted coordinate
// arrays, contribution tables, SAT grids, discretization grids, sweep
// solvers, id-slice arenas) across searches. An Engine holds one per
// composite so that steady-state serving rebuilds table *contents* each
// query but reallocates nothing — and batches of queries reuse the same
// per-worker scratch query after query. Safe for concurrent use; the
// zero value is ready.
type SlabCache struct {
	mu   sync.Mutex
	free []*tables
}

// get returns a recycled tables value (reset, capacities kept) or a
// fresh one.
func (c *SlabCache) get() *tables {
	if c == nil {
		return &tables{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.free); n > 0 {
		t := c.free[n-1]
		c.free = c.free[:n-1]
		t.reset()
		return t
	}
	return &tables{}
}

// put hands a tables value back for reuse.
func (c *SlabCache) put(t *tables) {
	if c == nil || t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.free) < 4 {
		c.free = append(c.free, t)
	}
}
