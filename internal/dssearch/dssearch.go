// Package dssearch implements the paper's primary contribution: the
// Discretize-and-Split search (DS-Search) algorithm for the ASP problem
// (paper §4), its (1+δ)-approximate variant (§6), and the ASRS front door
// that reduces a region query to ASP and maps the answer point back to a
// region (Theorem 1).
//
// DS-Search repeatedly discretizes a space into an n_row×n_col grid,
// evaluates clean cells exactly, lower-bounds dirty cells via Equation 1,
// prunes, and splits the surviving dirty cells into two MBR sub-spaces
// until each space either satisfies the GPS-accuracy drop condition
// (Definition 8) or runs out of unpruned dirty cells. Spaces are processed
// best-first from a min-heap keyed by lower bound.
package dssearch

import (
	"container/heap"
	"fmt"
	"math"

	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
	"asrs/internal/sweep"
)

// Options configures a DS-Search run.
type Options struct {
	// NCol, NRow control the discretization grid (paper default 30×30).
	NCol, NRow int
	// Delta is the approximation parameter δ of §6. Zero gives the exact
	// algorithm; δ>0 returns a region within (1+δ) of the optimum.
	Delta float64
	// Accuracy overrides the GPS accuracies (Definition 7) used by the
	// drop condition. Zero values are computed from the rectangle edges.
	Accuracy geom.Accuracy
	// DisableSafetyNet turns off the exactness safety net (the mini-sweep
	// run on drop-satisfied spaces that still hold unpruned dirty cells;
	// see DESIGN.md §3). With the net disabled the search matches the
	// paper's pseudocode exactly but inherits its Theorem 2 caveat.
	DisableSafetyNet bool
	// DisableRefinement turns off the exact subset-enumeration
	// refinement of dirty-cell lower bounds (DESIGN.md §3). With it off,
	// cells at the boundary of the optimal region can only be resolved by
	// splitting down to the drop condition — the ablation benchmarks
	// quantify the cost. Results stay exact either way.
	DisableRefinement bool
	// Anchor picks the reduction anchor (default: top-right corner).
	Anchor asp.Anchor
}

// DefaultNCol and DefaultNRow are the paper's best-performing grid
// granularity (§7.2: n_col = n_row = 30).
const (
	DefaultNCol = 30
	DefaultNRow = 30
)

func (o Options) withDefaults() Options {
	if o.NCol <= 0 {
		o.NCol = DefaultNCol
	}
	if o.NRow <= 0 {
		o.NRow = DefaultNRow
	}
	return o
}

func (o Options) validate() error {
	if o.Delta < 0 {
		return fmt.Errorf("dssearch: negative approximation parameter δ=%g", o.Delta)
	}
	if o.NCol < 2 || o.NRow < 2 {
		return fmt.Errorf("dssearch: grid must be at least 2x2, got %dx%d", o.NCol, o.NRow)
	}
	return nil
}

// Stats reports the work performed by one search.
type Stats struct {
	Discretizations int // Discretize invocations (spaces processed)
	Splits          int // Split invocations
	Bisections      int // forced bisections (progress guard)
	CleanCells      int // clean cells evaluated
	DirtyCells      int // dirty cells bounded
	PrunedCells     int // dirty cells pruned by Equation 1
	MiniSweeps      int // safety-net sweeps run
	MiniSweepRects  int // rectangles handed to safety-net sweeps
	RefinedCells    int // dirty cells tightened by subset enumeration
	RefinePruned    int // dirty cells pruned only after refinement
	CenterProbes    int // dirty-cell centers evaluated as candidates
	HeapPushes      int
	MaxHeapSize     int
}

// spaceItem is one heap entry: a sub-space, its lower bound, and the
// rectangle objects overlapping it.
type spaceItem struct {
	space geom.Rect
	lb    float64
	rects []asp.RectObject
}

type spaceHeap []spaceItem

func (h spaceHeap) Len() int            { return len(h) }
func (h spaceHeap) Less(i, j int) bool  { return h[i].lb < h[j].lb }
func (h spaceHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *spaceHeap) Push(x interface{}) { *h = append(*h, x.(spaceItem)) }
func (h *spaceHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1].rects = nil
	*h = old[:n-1]
	return it
}

// Searcher runs DS-Search over a fixed set of rectangle objects and a
// query. Construct with NewSearcher; one Searcher is good for one Solve.
type Searcher struct {
	rects []asp.RectObject
	query asp.Query
	opt   Options
	acc   geom.Accuracy
	grid  *gridBuffers
	isInt []bool // integer representation dims (fD counts)
	Stats Stats

	best asp.Result
}

// NewSearcher validates inputs and prepares buffers.
func NewSearcher(rects []asp.RectObject, q asp.Query, opt Options) (*Searcher, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	acc := opt.Accuracy
	if acc.DX <= 0 || acc.DY <= 0 {
		computed := geom.ComputeAccuracy(rectsOnly(rects))
		if acc.DX <= 0 {
			acc.DX = computed.DX
		}
		if acc.DY <= 0 {
			acc.DY = computed.DY
		}
	}
	return &Searcher{
		rects: rects,
		query: q,
		opt:   opt,
		acc:   acc,
		grid:  newGridBuffers(opt.NCol, opt.NRow, q.F),
		isInt: q.F.IntegerDims(),
	}, nil
}

func rectsOnly(rs []asp.RectObject) []geom.Rect {
	out := make([]geom.Rect, len(rs))
	for i, r := range rs {
		out[i] = r.Rect
	}
	return out
}

// threshold is the pruning cutoff: d_opt for the exact algorithm,
// d_opt/(1+δ) for the approximate variant (§6).
func (s *Searcher) threshold() float64 {
	if s.opt.Delta > 0 {
		return s.best.Dist / (1 + s.opt.Delta)
	}
	return s.best.Dist
}

// Solve runs DS-Search over the full plane: the space of all rectangle
// objects plus the empty-cover candidate outside it.
func (s *Searcher) Solve() asp.Result {
	space := asp.Space(s.rects)
	s.best = s.emptyResult(space)
	if len(s.rects) > 0 {
		s.SolveWithin(space, 0)
	}
	s.best.Rep = asp.PointRepresentation(s.rects, s.query.F, s.best.Point)
	s.best.Dist = s.query.Distance(s.best.Rep)
	return s.best
}

// emptyResult evaluates the empty covering set outside space.
func (s *Searcher) emptyResult(space geom.Rect) asp.Result {
	p := asp.EmptyCandidate(space)
	rep := make([]float64, s.query.F.Dims())
	s.query.F.FinalizeExact(make([]float64, s.query.F.Channels()), rep)
	return asp.Result{Point: p, Dist: s.query.Distance(rep), Rep: rep}
}

// SolveWithin refines the current best answer by searching the given
// space, seeded with the known lower bound seedLB (Algorithm 1, also the
// inner call of GI-DS Algorithm 2, line 7). The caller must have
// initialized s.best (Solve does; gridindex seeds it with its own running
// optimum).
func (s *Searcher) SolveWithin(space geom.Rect, seedLB float64) {
	s.SolveWithinSubset(space, seedLB, filterRects(s.rects, space))
}

// SolveWithinSubset is SolveWithin for callers that already know the
// rectangle objects relevant to the space (GI-DS narrows them with a
// binary-searched window instead of a linear scan). rects must contain
// every rectangle whose interior intersects the space.
func (s *Searcher) SolveWithinSubset(space geom.Rect, seedLB float64, rects []asp.RectObject) {
	if !space.IsValid() || len(s.rects) == 0 {
		return
	}
	h := &spaceHeap{}
	heap.Init(h)
	heap.Push(h, spaceItem{space: space, lb: seedLB, rects: rects})
	s.Stats.HeapPushes++

	for h.Len() > 0 {
		if h.Len() > s.Stats.MaxHeapSize {
			s.Stats.MaxHeapSize = h.Len()
		}
		it := heap.Pop(h).(spaceItem)
		if it.lb >= s.threshold() {
			break // every remaining space is bounded away from improving
		}
		s.processSpace(it, h)
	}
}

// sweepCutoff is the rectangle count below which a space is solved
// directly by the exact sweep instead of further discretize/split rounds:
// an O(m²) sweep on m ≤ 48 rectangles is cheaper than even one more grid
// pass and terminates the whole subtree.
const sweepCutoff = 160

// processSpace discretizes one space, prunes, and either stops (drop
// condition / nothing left), runs the safety net, or splits and pushes the
// two sub-spaces.
func (s *Searcher) processSpace(it spaceItem, h *spaceHeap) {
	if len(it.rects) <= sweepCutoff && !s.opt.DisableSafetyNet {
		s.miniSweep([]cellInfo{{rect: it.space}}, it.rects)
		return
	}
	s.Stats.Discretizations++
	dirty, drop := s.discretize(it.space, it.rects)
	if len(dirty) == 0 {
		return
	}
	if drop {
		if !s.opt.DisableSafetyNet {
			s.miniSweep(dirty, it.rects)
		}
		return
	}
	if len(dirty) == 1 {
		// Nothing to partition: recurse into the single cell's extent.
		s.push(h, dirty[0].rect, dirty[0].lb, it)
		return
	}
	g1, lb1, g2, lb2 := split(dirty)
	s.Stats.Splits++
	s.push(h, g1, lb1, it)
	s.push(h, g2, lb2, it)
}

// push enqueues a child space, guarding against non-shrinking children
// (which would never satisfy the drop condition) by bisecting instead.
func (s *Searcher) push(h *spaceHeap, child geom.Rect, lb float64, parent spaceItem) {
	if lb >= s.threshold() {
		return
	}
	const shrink = 0.999 // child must be meaningfully smaller in some axis
	if child.Width() > parent.space.Width()*shrink && child.Height() > parent.space.Height()*shrink {
		s.Stats.Bisections++
		var left, right geom.Rect
		if child.Width() >= child.Height() {
			mid := (child.MinX + child.MaxX) / 2
			left = geom.Rect{MinX: child.MinX, MinY: child.MinY, MaxX: mid, MaxY: child.MaxY}
			right = geom.Rect{MinX: mid, MinY: child.MinY, MaxX: child.MaxX, MaxY: child.MaxY}
		} else {
			mid := (child.MinY + child.MaxY) / 2
			left = geom.Rect{MinX: child.MinX, MinY: child.MinY, MaxX: child.MaxX, MaxY: mid}
			right = geom.Rect{MinX: child.MinX, MinY: mid, MaxX: child.MaxX, MaxY: child.MaxY}
		}
		heap.Push(h, spaceItem{space: left, lb: lb, rects: filterRects(parent.rects, left)})
		heap.Push(h, spaceItem{space: right, lb: lb, rects: filterRects(parent.rects, right)})
		s.Stats.HeapPushes += 2
		return
	}
	heap.Push(h, spaceItem{space: child, lb: lb, rects: filterRects(parent.rects, child)})
	s.Stats.HeapPushes++
}

// miniSweep runs the Base algorithm restricted to the MBR of the surviving
// dirty cells; see DESIGN.md §3 "Exactness safety net".
func (s *Searcher) miniSweep(dirty []cellInfo, rects []asp.RectObject) {
	mbr := geom.EmptyRect()
	for _, c := range dirty {
		mbr = mbr.Union(c.rect)
	}
	sub := filterRects(rects, mbr)
	s.Stats.MiniSweeps++
	s.Stats.MiniSweepRects += len(sub)
	sw, err := sweep.New(sub, s.query)
	if err != nil {
		return // query was validated at construction; unreachable
	}
	if r, ok := sw.SolveWithin(mbr); ok && r.Dist < s.best.Dist {
		s.best = r
	}
}

// filterRects returns the rectangle objects whose open interior intersects
// the closed space (only those can cover a candidate point in the space).
func filterRects(rs []asp.RectObject, space geom.Rect) []asp.RectObject {
	out := make([]asp.RectObject, 0, len(rs)/2+1)
	for _, r := range rs {
		if r.Rect.MinX < space.MaxX && space.MinX < r.Rect.MaxX &&
			r.Rect.MinY < space.MaxY && space.MinY < r.Rect.MaxY {
			out = append(out, r)
		}
	}
	return out
}

// Best returns the current best result (valid during and after a solve;
// used by the grid-index driver to thread d_opt across cells).
func (s *Searcher) Best() asp.Result { return s.best }

// SeedBest installs an externally found incumbent (GI-DS threads its
// running optimum through successive DS-Search invocations).
func (s *Searcher) SeedBest(r asp.Result) { s.best = r }

// SolveASRSExcluding solves the ASRS problem restricted to answer regions
// that do not overlap the exclude rectangle (beyond shared boundary).
// This supports query-by-example with a real query region, where the
// query region itself would otherwise be the trivial zero-distance
// answer (§7.6's case study: query "Orchard", answer "Marina Bay").
// Requires the default top-right-corner anchor.
func SolveASRSExcluding(ds *attr.Dataset, a, b float64, q asp.Query, exclude geom.Rect, opt Options) (geom.Rect, asp.Result, Stats, error) {
	if opt.Anchor != asp.AnchorTR {
		return geom.Rect{}, asp.Result{}, Stats{}, fmt.Errorf("dssearch: exclusion requires the top-right-corner anchor")
	}
	rects, err := asp.Reduce(ds, a, b, opt.Anchor)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	s, err := NewSearcher(rects, q, opt)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	space := asp.Space(rects)
	s.best = s.emptyResult(space)
	if len(rects) > 0 {
		// Bottom-left corners whose region would overlap the excluded
		// rectangle form its Minkowski expansion by (a, b) toward min.
		forbidden := geom.Rect{MinX: exclude.MinX - a, MinY: exclude.MinY - b, MaxX: exclude.MaxX, MaxY: exclude.MaxY}
		for _, sub := range subtractRect(space, forbidden) {
			s.SolveWithin(sub, 0)
		}
	}
	s.best.Rep = asp.PointRepresentation(rects, s.query.F, s.best.Point)
	s.best.Dist = s.query.Distance(s.best.Rep)
	region := opt.Anchor.RegionFor(s.best.Point, a, b)
	return region, s.best, s.Stats, nil
}

// SolveASRSTopK returns up to k non-overlapping similar regions in
// increasing distance order: the greedy sequence "best region, best
// region not overlapping the first, …". An optional extra exclusion
// (typically the example query region) applies to every answer. This is
// an extension beyond the paper, built from the same machinery.
func SolveASRSTopK(ds *attr.Dataset, a, b float64, q asp.Query, k int, exclude []geom.Rect, opt Options) ([]geom.Rect, []asp.Result, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("dssearch: top-k requires k >= 1, got %d", k)
	}
	if opt.Anchor != asp.AnchorTR {
		return nil, nil, fmt.Errorf("dssearch: top-k requires the top-right-corner anchor")
	}
	rects, err := asp.Reduce(ds, a, b, opt.Anchor)
	if err != nil {
		return nil, nil, err
	}
	space := asp.Space(rects)
	excl := append([]geom.Rect(nil), exclude...)
	var regions []geom.Rect
	var results []asp.Result
	for i := 0; i < k; i++ {
		s, err := NewSearcher(rects, q, opt)
		if err != nil {
			return nil, nil, err
		}
		s.best = s.emptyResult(space)
		if len(rects) > 0 {
			pieces := []geom.Rect{space}
			for _, e := range excl {
				forbidden := geom.Rect{MinX: e.MinX - a, MinY: e.MinY - b, MaxX: e.MaxX, MaxY: e.MaxY}
				var next []geom.Rect
				for _, p := range pieces {
					next = append(next, subtractRect(p, forbidden)...)
				}
				pieces = next
			}
			for _, p := range pieces {
				s.SolveWithin(p, 0)
			}
		}
		s.best.Rep = asp.PointRepresentation(rects, q.F, s.best.Point)
		s.best.Dist = s.query.Distance(s.best.Rep)
		region := opt.Anchor.RegionFor(s.best.Point, a, b)
		regions = append(regions, region)
		results = append(results, s.best)
		excl = append(excl, region)
	}
	return regions, results, nil
}

// subtractRect returns up to four rectangles covering space minus the
// open interior of f.
func subtractRect(space, f geom.Rect) []geom.Rect {
	if !space.IntersectsOpen(f) {
		return []geom.Rect{space}
	}
	var out []geom.Rect
	add := func(r geom.Rect) {
		if r.IsValid() && !r.IsEmpty() {
			out = append(out, r)
		}
	}
	add(geom.Rect{MinX: space.MinX, MinY: space.MinY, MaxX: f.MinX, MaxY: space.MaxY}) // left
	add(geom.Rect{MinX: f.MaxX, MinY: space.MinY, MaxX: space.MaxX, MaxY: space.MaxY}) // right
	mid := geom.Rect{MinX: math.Max(space.MinX, f.MinX), MaxX: math.Min(space.MaxX, f.MaxX)}
	add(geom.Rect{MinX: mid.MinX, MinY: space.MinY, MaxX: mid.MaxX, MaxY: f.MinY}) // bottom
	add(geom.Rect{MinX: mid.MinX, MinY: f.MaxY, MaxX: mid.MaxX, MaxY: space.MaxY}) // top
	return out
}

// SolveASRS is the package front door: it solves the ASRS problem for a
// dataset directly. It reduces to ASP (Definition 5), runs DS-Search, and
// returns the answer region (Theorem 1) along with the answer
// representation and distance.
func SolveASRS(ds *attr.Dataset, a, b float64, q asp.Query, opt Options) (geom.Rect, asp.Result, Stats, error) {
	rects, err := asp.Reduce(ds, a, b, opt.Anchor)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	s, err := NewSearcher(rects, q, opt)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	res := s.Solve()
	region := opt.Anchor.RegionFor(res.Point, a, b)
	return region, res, s.Stats, nil
}
