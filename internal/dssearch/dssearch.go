// Package dssearch implements the paper's primary contribution: the
// Discretize-and-Split search (DS-Search) algorithm for the ASP problem
// (paper §4), its (1+δ)-approximate variant (§6), and the ASRS front door
// that reduces a region query to ASP and maps the answer point back to a
// region (Theorem 1).
//
// DS-Search repeatedly discretizes a space into an n_row×n_col grid,
// evaluates clean cells exactly, lower-bounds dirty cells via Equation 1,
// prunes, and splits the surviving dirty cells into two MBR sub-spaces
// until each space either satisfies the GPS-accuracy drop condition
// (Definition 8) or runs out of unpruned dirty cells. Spaces are processed
// best-first from a min-heap keyed by lower bound.
//
// The best-first loop itself lives in internal/kernel and runs on a
// worker pool (Options.Workers): spaces are popped in deterministic
// batches, processed concurrently against a shared atomic pruning bound,
// and merged so the final answer is bit-identical for every worker count.
//
// Per-query state is concentrated in the incremental-aggregation layer of
// sat.go: the master rectangle array (sorted for integer-exact
// composites), flattened channel contributions, and the query-level
// summed-area table that large discretizations read instead of rebuilding
// difference arrays. Rectangle subsets flow through the kernel heap as
// 4-byte id slices recycled by per-worker arenas, so the steady state
// allocates almost nothing per space.
package dssearch

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
	"asrs/internal/kernel"
	"asrs/internal/sweep"
)

// Options configures a DS-Search run.
type Options struct {
	// Ctx, when non-nil, cancels the search cooperatively: the kernel
	// checks it at superstep boundaries and the front doors between
	// sub-space solves, so a cancelled or deadline-expired context stops
	// the search within one batch of work and surfaces
	// context.Canceled / context.DeadlineExceeded from the front door.
	// Cancellation never tears a superstep, so searches that complete
	// keep the bit-identical-answers guarantee unchanged.
	Ctx context.Context
	// NCol, NRow control the discretization grid (paper default 30×30).
	NCol, NRow int
	// Delta is the approximation parameter δ of §6. Zero gives the exact
	// algorithm; δ>0 returns a region within (1+δ) of the optimum.
	Delta float64
	// Workers is the size of the search worker pool; values <= 0 select
	// runtime.GOMAXPROCS(0). The answer is independent of the setting —
	// the kernel's superstep schedule is deterministic — so Workers is
	// purely a throughput knob.
	Workers int
	// BatchSize is the number of spaces the kernel pops per superstep;
	// values <= 0 select kernel.DefaultBatchSize (32). Larger batches
	// keep wide machines busier at the cost of staler pruning bounds
	// within a round. For any fixed batch size the answer is fully
	// deterministic and independent of Workers; changing the batch size
	// keeps the answer *distance* exact and identical but may resolve
	// ties between equally-distant optimum points differently (DESIGN.md
	// §4; pinned by TestSearchEquivalenceRealValued).
	BatchSize int
	// Accuracy overrides the GPS accuracies (Definition 7) used by the
	// drop condition. Zero values are computed from the rectangle edges.
	Accuracy geom.Accuracy
	// DisableSafetyNet turns off the exactness safety net (the mini-sweep
	// run on drop-satisfied spaces that still hold unpruned dirty cells;
	// see DESIGN.md §3). With the net disabled the search matches the
	// paper's pseudocode exactly but inherits its Theorem 2 caveat.
	DisableSafetyNet bool
	// DisableRefinement turns off the exact subset-enumeration
	// refinement of dirty-cell lower bounds (DESIGN.md §3). With it off,
	// cells at the boundary of the optimal region can only be resolved by
	// splitting down to the drop condition — the ablation benchmarks
	// quantify the cost. Results stay exact either way.
	DisableRefinement bool
	// DisableSAT turns off the query-level summed-area-table fill for
	// large discretizations (DESIGN.md §2), forcing the difference-array
	// path everywhere. Cell totals are bit-identical either way for the
	// integer-exact composites the SAT serves; the switch exists for
	// ablation and as the oracle for the SAT property tests.
	DisableSAT bool
	// DisableFlatStrip forces the mini-sweep's incremental path onto the
	// legacy per-point Fenwick strip evaluator, bypassing the flat
	// prefix-scan evaluator and its cost-model selection (DESIGN.md §8).
	// Answers are bit-identical either way; the switch exists for
	// ablation (BENCH_PR6's strip A/B) and as the oracle for the
	// strip-evaluator property tests.
	DisableFlatStrip bool
	// Slabs, when non-nil, recycles the per-query table slabs (sorted
	// coordinate arrays, contribution tables, SAT grids, discretization
	// grids, sweep solvers, id arenas) across searches. Callers that set
	// it must call Searcher.Release (the package front doors do) when
	// the search is done.
	Slabs *SlabCache
	// Pyramid, when non-nil and built for the query's composite over the
	// same master cardinality, binds the searcher to the persistent
	// dataset-level aggregate pyramid instead of rebuilding the
	// per-query aggregation layer: master order, contributions,
	// certificates and SAT levels are aliased, leaving only O(n)
	// per-query work (DESIGN.md §6). Answers are bit-identical to the
	// unassisted path; the binding silently falls back to the classic
	// build when it cannot guarantee that (wrong composite, wrong
	// cardinality, non-TR anchor, or anchor collapse under translation).
	Pyramid *Pyramid
	// Prepared, when non-nil, additionally shares the per-query-shape
	// state (materialized master rectangles, GPS accuracy) across every
	// query with the same (a, b) extent — the Engine's batch grouping
	// builds one Prepared per group. Implies Pyramid (it carries one).
	Prepared *Prepared
	// Anchor picks the reduction anchor (default: top-right corner).
	Anchor asp.Anchor
	// SharedCap, when non-nil, attaches a cross-search shared pruning
	// cap to every bound this search creates: merge barriers publish the
	// running best distance into it, and the threshold folds sibling
	// publications back in with open (strictly-worse-only) semantics, so
	// cooperating sub-searches of one scatter–gather fan-out prune each
	// other without ever suppressing a candidate at the global optimum
	// (DESIGN.md §11). The cap only tightens pruning; the gathered
	// minimum across the fan-out is unaffected.
	SharedCap *kernel.ExtCap
}

// DefaultNCol and DefaultNRow are the paper's best-performing grid
// granularity (§7.2: n_col = n_row = 30).
const (
	DefaultNCol = 30
	DefaultNRow = 30
)

func (o Options) withDefaults() Options {
	if o.NCol <= 0 {
		o.NCol = DefaultNCol
	}
	if o.NRow <= 0 {
		o.NRow = DefaultNRow
	}
	return o
}

func (o Options) validate() error {
	if o.Delta < 0 {
		return fmt.Errorf("dssearch: negative approximation parameter δ=%g", o.Delta)
	}
	if o.NCol < 2 || o.NRow < 2 {
		return fmt.Errorf("dssearch: grid must be at least 2x2, got %dx%d", o.NCol, o.NRow)
	}
	return nil
}

// Stats reports the work performed by one search.
type Stats struct {
	Discretizations int // Discretize invocations (spaces processed)
	SATFills        int // discretizations served by the summed-area table
	Splits          int // Split invocations
	Bisections      int // forced bisections (progress guard)
	CleanCells      int // clean cells evaluated
	DirtyCells      int // dirty cells bounded
	PrunedCells     int // dirty cells pruned by Equation 1
	MiniSweeps      int // safety-net sweeps run
	MiniSweepRects  int // rectangles handed to safety-net sweeps
	FlatStrips      int // mini-sweep strips resolved by the flat prefix scan
	FenwickStrips   int // mini-sweep strips resolved by Fenwick tree walks
	RefinedCells    int // dirty cells tightened by subset enumeration
	RefinePruned    int // dirty cells pruned only after refinement
	CenterProbes    int // dirty-cell centers evaluated as candidates
	HeapPushes      int
	MaxHeapSize     int
	Steals          int // superstep items drained from another worker's deque
}

// add folds another stats record into s (worker merge).
func (s *Stats) add(o Stats) {
	s.Discretizations += o.Discretizations
	s.SATFills += o.SATFills
	s.Splits += o.Splits
	s.Bisections += o.Bisections
	s.CleanCells += o.CleanCells
	s.DirtyCells += o.DirtyCells
	s.PrunedCells += o.PrunedCells
	s.MiniSweeps += o.MiniSweeps
	s.MiniSweepRects += o.MiniSweepRects
	s.FlatStrips += o.FlatStrips
	s.FenwickStrips += o.FenwickStrips
	s.RefinedCells += o.RefinedCells
	s.RefinePruned += o.RefinePruned
	s.CenterProbes += o.CenterProbes
	s.HeapPushes += o.HeapPushes
	s.Steals += o.Steals
	if o.MaxHeapSize > s.MaxHeapSize {
		s.MaxHeapSize = o.MaxHeapSize
	}
}

// Searcher runs DS-Search over a fixed set of rectangle objects and a
// query. Construct with NewSearcher; one Searcher is good for one query
// (but may solve many sub-spaces, as GI-DS does). A Searcher must not be
// used from multiple goroutines — concurrency happens inside each solve
// through the kernel worker pool.
type Searcher struct {
	rects []asp.RectObject // master array; sorted by (MinX, MinY) for integer-exact composites
	query asp.Query
	opt   Options
	acc   geom.Accuracy
	isInt []bool  // integer representation dims (fD counts)
	tab   *tables // per-query aggregation layer (sat.go)
	Stats Stats

	best    asp.Result
	err     error // first cancellation error; later solves become no-ops
	workers []*worker

	// Batch-built per-worker scratch (ensureScratch): every worker's
	// discretization grids, sweep solvers and result buffers come from a
	// handful of shared slab allocations, so the allocation count stays
	// flat in the worker count.
	scratchOnce sync.Once
	grids       []gridBuffers
	sweepPool   []sweep.Solver

	// sharedIds is the spill arena for recycled id slices: the kernel's
	// merge barrier releases pruned children here, and workers fall back
	// to it when their own arena has no fitting slice. The mutex sits on
	// the miss path only — steady-state gets and puts stay within one
	// worker's private arena (DESIGN.md §4).
	sharedMu  sync.Mutex
	sharedIds [][]int32
}

// NewSearcher validates inputs and prepares per-worker state. The rects
// slice is only read; if the master order needs resorting (integer-exact
// composites), a copy is sorted instead.
func NewSearcher(rects []asp.RectObject, q asp.Query, opt Options) (*Searcher, error) {
	return newSearcher(rects, q, opt, false)
}

// NewSearcherOwning is NewSearcher for callers that hand over ownership
// of the rects slice: it may be re-sorted in place, which the hot paths
// prefer over copying. The slice must not be concurrently read elsewhere.
func NewSearcherOwning(rects []asp.RectObject, q asp.Query, opt Options) (*Searcher, error) {
	return newSearcher(rects, q, opt, true)
}

func newSearcher(rects []asp.RectObject, q asp.Query, opt Options, own bool) (*Searcher, error) {
	opt = opt.withDefaults()
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	if opt.Prepared != nil && opt.Pyramid == nil {
		opt.Pyramid = opt.Prepared.p
	}
	tab := opt.Slabs.get()
	var master []asp.RectObject
	prepBound, bound := false, false
	if prep := opt.Prepared; prep != nil && prep.p != nil && rects == nil &&
		opt.Anchor == asp.AnchorTR && prep.p.f == q.F {
		// Group-shared shape: the master materialization and accuracy were
		// computed once by Pyramid.Prepare and are shared read-only by
		// every query in the group. The Prepared binds through its OWN
		// pyramid — opt.Pyramid may legitimately point at a different
		// instance (an engine cache refreshed by SetPyramid, or a
		// caller-supplied shape) and must not be allowed to strand the
		// query on an empty master. A *nil* rects slice is the sentinel
		// ReduceForSearch returns after validating the shape against
		// (ds, a, b); an empty-but-non-nil reduction (empty dataset) is a
		// real master and must NOT bind a foreign shape.
		master = prep.master
		prep.p.bindPrepared(tab, prep)
		prepBound, bound = true, true
	} else if p := opt.Pyramid; p != nil && opt.Anchor == asp.AnchorTR && p.f == q.F && len(rects) == p.n {
		if m, ok := p.bind(tab, rects); ok {
			master = m
			bound = true
		}
	}
	if !bound {
		master = buildTables(tab, rects, q.F, own)
	}
	acc := opt.Accuracy
	if acc.DX <= 0 || acc.DY <= 0 {
		var computed geom.Accuracy
		switch {
		case prepBound:
			computed = opt.Prepared.acc
		case bound:
			computed = tab.pyr.accuracyIds(master)
		default:
			computed = tab.accuracy(master)
		}
		if acc.DX <= 0 {
			acc.DX = computed.DX
		}
		if acc.DY <= 0 {
			acc.DY = computed.DY
		}
	}
	s := &Searcher{
		rects: master,
		query: q,
		opt:   opt,
		acc:   acc,
		isInt: q.F.IntegerDims(),
		tab:   tab,
	}
	// Recycled id slices from a previous query using the same slab cache.
	s.sharedIds, tab.idFree = tab.idFree, nil
	nw := kernel.Workers(opt.Workers)
	ws := make([]worker, nw)
	s.workers = make([]*worker, nw)
	for i := range ws {
		ws[i].s = s
		s.workers[i] = &ws[i]
	}
	return s, nil
}

// ensureScratch lazily batch-builds the per-worker scratch at the first
// processed space: all workers' discretization grids (one slab), sweep
// solvers (sweep.NewPool), incumbent/dirty/mini-sweep buffers (one slab
// each). The slabs are *retained on the tables value* and recycled
// through the SlabCache, so batches of queries on the same composite
// reuse every worker's scratch query after query instead of
// reallocating it (the batch-bench alloc assertion pins this). Safe
// under concurrent workers via the sync.Once.
func (s *Searcher) ensureScratch() {
	s.scratchOnce.Do(func() {
		nw := len(s.workers)
		f := s.query.F
		t := s.tab
		ncol, nrow := s.opt.NCol, s.opt.NRow
		if t.grids == nil || t.gridNW < nw || t.gridNCol != ncol || t.gridNRow != nrow ||
			t.gridEff != t.eff || t.gridF != f {
			t.grids = newGridBuffersBatch(nw, ncol, nrow, f, t.eff)
			t.gridNW, t.gridNCol, t.gridNRow, t.gridEff, t.gridF = nw, ncol, nrow, t.eff, f
		}
		s.grids = t.grids
		incrCap := 0
		if t.allExact {
			incrCap = 2048 // pre-size the Fenwick sweep scratch it will use
		}
		if t.sweepPool != nil && t.sweepN >= nw && t.sweepF == f && t.sweepCap == incrCap {
			// Recycled solvers: rebind the query (same composite, new
			// target/weights), keep all scratch.
			for i := 0; i < nw; i++ {
				t.sweepPool[i].SetQuery(s.query)
			}
			s.sweepPool = t.sweepPool
		} else if pool, err := sweep.NewPool(nw, s.query, incrCap); err == nil {
			t.sweepPool, t.sweepN, t.sweepF, t.sweepCap = pool, nw, f, incrCap
			s.sweepPool = pool
		}
		dims := f.Dims()
		cells := ncol * nrow
		const swCap = 1024
		if len(t.scratchF) < nw*dims || len(t.scratchCells) < nw*cells ||
			len(t.scratchRects) < nw*swCap {
			t.scratchF = make([]float64, nw*dims)
			t.scratchCells = make([]cellInfo, nw*cells)
			t.scratchRects = make([]asp.RectObject, nw*swCap)
		}
		reps := t.scratchF
		dirt := t.scratchCells
		swBack := t.scratchRects
		// Prewarm each worker's private arena with two small id slices
		// carved from one slab, so the first spaces a worker touches hit
		// the arena instead of allocating. Recycled searchers skip this:
		// their arenas are seeded from the slab cache's recycled id
		// slices instead (which may alias an earlier query's warm slab —
		// carving it again would hand the same memory out twice).
		var warm []int32
		if len(s.sharedIds) == 0 {
			s.sharedIds = make([][]int32, 0, 64)
			warm = make([]int32, nw*2*workerArenaMaxCap)
		}
		for i, w := range s.workers {
			c := workerArenaMaxCap
			if warm != nil {
				w.arena = append(w.arena,
					warm[(2*i)*c:(2*i)*c:(2*i+1)*c],
					warm[(2*i+1)*c:(2*i+1)*c:(2*i+2)*c])
			}
			w.grid = &s.grids[i]
			if s.sweepPool != nil {
				w.sw = &s.sweepPool[i]
				w.sw.SetIncremental(t.allExact)
				if t.allExact {
					w.sw.SetFixedPoint(t.chScale, t.chInv)
				} else {
					w.sw.SetFixedPoint(nil, nil)
				}
				w.sw.SetStripMode(s.stripMode())
				w.sw.SetStripCost(stripCostModel())
			}
			w.rep = reps[i*dims : i*dims : (i+1)*dims]
			w.dirty = dirt[i*cells : i*cells : (i+1)*cells]
			w.swSub = swBack[i*swCap : i*swCap : (i+1)*swCap]
		}
	})
}

// Release hands the searcher's slab memory back to Options.Slabs for
// reuse by later queries. The searcher must not be used afterwards.
// A no-op when no slab cache was configured.
//
// A search that died in a kernel panic does NOT recycle: the panic may
// have interrupted a worker mid-mutation (a sweep solver half way
// through an incremental update, a grid buffer partially filled), and
// per-worker scratch is rebound — not rebuilt — on reuse. Dropping the
// slabs costs one rebuild on the composite's next query; recycling
// poisoned scratch could silently perturb it. The shared caches the
// tables merely alias (the engine pyramid, prepared shapes) are
// read-only during search and stay valid.
func (s *Searcher) Release() {
	if s.tab == nil || s.opt.Slabs == nil {
		return
	}
	var pe *kernel.PanicError
	if errors.As(s.err, &pe) {
		s.tab = nil
		return
	}
	t := s.tab
	for _, w := range s.workers {
		t.idFree = append(t.idFree, w.arena...)
		w.arena = nil
	}
	t.idFree = append(t.idFree, s.sharedIds...)
	s.sharedIds = nil
	if len(t.idFree) > 64 {
		t.idFree = t.idFree[:64]
	}
	s.opt.Slabs.put(t)
	s.tab = nil
}

// worker is the per-goroutine state of one kernel worker: discretization
// scratch, a rebindable mini-sweep solver, an id-slice arena, the local
// incumbent for the space being processed, and private work counters
// merged after each run.
type worker struct {
	s     *Searcher
	grid  *gridBuffers
	sw    *sweep.Solver
	swSub []asp.RectObject // mini-sweep rect scratch (materialized from ids)
	dirty []cellInfo       // discretize output scratch
	one   [1]cellInfo      // single-cell scratch for degenerate sweeps
	cur   asp.Result       // local incumbent; Rep aliases repBuf
	rep   []float64        // owned backing store for cur.Rep
	arena [][]int32        // recycled id slices, touched only by this worker
	stats Stats
}

// getIds returns a recycled id slice with capacity >= n (length 0),
// preferring the worker's own arena, then the searcher's shared spill
// list, then a fresh allocation.
func (w *worker) getIds(n int) []int32 {
	a := w.arena
	for i := len(a) - 1; i >= 0; i-- {
		if cap(a[i]) >= n {
			out := a[i][:0]
			a[i] = a[len(a)-1]
			w.arena = a[:len(a)-1]
			return out
		}
	}
	if out := w.s.sharedGetIds(n); out != nil {
		return out
	}
	return make([]int32, 0, n)
}

// Arena routing: each worker's private (lock-free) arena holds a few
// small slices — the common churn of deep, narrow spaces — while large
// slices and surplus recirculate through the shared spill list so they
// do not strand in one worker's arena while another allocates fresh.
// That stranding is what would make allocs/op grow with the worker
// count.
const (
	workerArenaCap    = 2
	workerArenaMaxCap = 512 // slice capacity above which puts go shared
)

// putIds recycles an id slice into the worker's own arena, spilling
// surplus and large slices to the shared list.
func (w *worker) putIds(ids []int32) {
	if cap(ids) == 0 {
		return
	}
	if cap(ids) > workerArenaMaxCap || len(w.arena) >= workerArenaCap {
		w.s.sharedPutIds(ids)
		return
	}
	w.arena = append(w.arena, ids)
}

// sharedGetIds pops a fitting slice from the shared spill list,
// preferring the smallest sufficient capacity so large slices stay
// available for large requests. Workers may call it concurrently; the
// list is short and the mutex sits on the miss path only.
func (s *Searcher) sharedGetIds(n int) []int32 {
	s.sharedMu.Lock()
	defer s.sharedMu.Unlock()
	a := s.sharedIds
	best := -1
	for i := len(a) - 1; i >= 0; i-- {
		if c := cap(a[i]); c >= n && (best < 0 || c < cap(a[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	out := a[best][:0]
	a[best] = a[len(a)-1]
	s.sharedIds = a[:len(a)-1]
	return out
}

// sharedPutIds pushes a slice onto the shared spill list. It is called
// from the kernel's merge barrier and heap-drain AND concurrently by
// workers mid-round through the putIds spill path — the mutex is
// load-bearing, not defensive.
func (s *Searcher) sharedPutIds(ids []int32) {
	if cap(ids) == 0 {
		return
	}
	s.sharedMu.Lock()
	s.sharedIds = append(s.sharedIds, ids)
	s.sharedMu.Unlock()
}

// threshold is the pruning cutoff: d_opt for the exact algorithm,
// d_opt/(1+δ) for the approximate variant (§6), evaluated against the
// worker's local incumbent.
func (w *worker) threshold() float64 {
	if w.s.opt.Delta > 0 {
		return w.cur.Dist / (1 + w.s.opt.Delta)
	}
	return w.cur.Dist
}

// beginItem resets the worker's incumbent to the superstep snapshot. The
// representation is copied into worker-owned storage so improvements
// never write through to the shared bound's buffer.
func (w *worker) beginItem(incumbent asp.Result) {
	w.rep = append(w.rep[:0], incumbent.Rep...)
	w.cur = asp.Result{Point: incumbent.Point, Dist: incumbent.Dist, Rep: w.rep}
}

// improve installs a better local incumbent under the kernel's canonical
// order, copying rep into worker-owned storage.
func (w *worker) improve(dist float64, p geom.Point, rep []float64) {
	if !kernel.Better(asp.Result{Point: p, Dist: dist}, w.cur) {
		return
	}
	w.rep = append(w.rep[:0], rep...)
	w.cur = asp.Result{Point: p, Dist: dist, Rep: w.rep}
}

// Solve runs DS-Search over the full plane: the space of all rectangle
// objects plus the empty-cover candidate outside it.
func (s *Searcher) Solve() asp.Result {
	space := asp.Space(s.rects)
	s.best = s.emptyResult(space)
	if len(s.rects) > 0 {
		s.SolveWithin(space, 0)
	}
	s.best.Rep = s.PointRepresentation(s.best.Point)
	s.best.Dist = s.query.Distance(s.best.Rep)
	return s.best
}

// emptyResult evaluates the empty covering set outside space.
func (s *Searcher) emptyResult(space geom.Rect) asp.Result {
	p := asp.EmptyCandidate(space)
	rep := make([]float64, s.query.F.Dims())
	s.query.F.FinalizeExact(make([]float64, s.query.F.Channels()), rep)
	return asp.Result{Point: p, Dist: s.query.Distance(rep), Rep: rep}
}

// SolveWithin refines the current best answer by searching the given
// space, seeded with the known lower bound seedLB (Algorithm 1, also the
// inner call of GI-DS Algorithm 2, line 7). The caller must have
// initialized s.best (Solve does; gridindex seeds it with its own running
// optimum).
func (s *Searcher) SolveWithin(space geom.Rect, seedLB float64) {
	ids := s.AppendWindowIDs(space, s.workers[0].getIds(len(s.rects)))
	s.SolveWithinIDs(space, seedLB, ids)
	s.workers[0].putIds(ids)
}

// AppendWindowIDs appends the master ids of every rectangle whose open
// interior intersects the closed space (only those can cover a candidate
// point in the space) and returns dst. On sorted masters the candidates
// come from a binary-searched window rather than a full scan; when a SAT
// level is available (bound pyramid, or lazily built) and the window is
// much larger than the space's 2D anchor box, the ids are collected from
// the level's bins instead — certain bins bulk-append, boundary bins
// test exactly, and a final sort restores the ascending contract, so the
// result slice is identical either way.
func (s *Searcher) AppendWindowIDs(space geom.Rect, dst []int32) []int32 {
	master := s.rects
	t := s.tab
	lo, hi := 0, len(master)
	if t.sorted {
		lo, hi = t.window(space.MinX, space.MaxX)
		if t.satBuilt.Load() {
			if out, ok := s.appendBinIDs(space, dst, hi-lo); ok {
				return out
			}
		}
	}
	for i := lo; i < hi; i++ {
		r := &master[i].Rect
		if r.MinX < space.MaxX && space.MinX < r.MaxX &&
			r.MinY < space.MaxY && space.MinY < r.MaxY {
			dst = append(dst, int32(i))
		}
	}
	return dst
}

// appendBinIDs is the SAT-backed id collection of AppendWindowIDs: it
// walks the space's anchor box on the best level — the 2D region that
// can hold anchors of intersecting rectangles — instead of the 1D MinX
// window, whose x-range spans the full y extent. ok=false means the
// window scan is expected to be no slower (small windows, or boxes
// covering most of the window).
func (s *Searcher) appendBinIDs(space geom.Rect, dst []int32, window int) ([]int32, bool) {
	t := s.tab
	master := s.rects
	l, _ := t.pickLevel(master, space, 1, 1, space.MaxX-space.MinX, space.MaxY-space.MinY)
	i0 := l.xBinLE(master, space.MinX-t.wmax, true)
	i1 := l.xBinGT(master, space.MaxX, true)
	j0 := l.yBinLE(master, space.MinY-t.hmax, true)
	j1 := l.yBinGT(master, space.MaxY, true)
	if i0 >= i1 || j0 >= j1 {
		return dst, true // no anchor can intersect: empty result
	}
	// Estimated work: anchors in the box (count plane) plus bin visits,
	// versus the 1D window scan.
	box := l.countRegion(i0, i1, j0, j1)
	bins := (i1 - i0) * (j1 - j0)
	if int64(window) < 2*(box+int64(bins)) {
		return dst, false
	}
	// Certainly-intersecting bins (bulk append, CSR runs are contiguous
	// per row) versus boundary bins (exact test).
	ci0 := l.xBinGT(master, space.MinX-t.wmin, false)
	ci1 := l.xBinLE(master, space.MaxX, true)
	cj0 := l.yBinGT(master, space.MinY-t.hmin, false)
	cj1 := l.yBinLE(master, space.MaxY, true)
	start := len(dst)
	for bj := j0; bj < j1; bj++ {
		row := bj * l.gx
		inJ := bj >= cj0 && bj < cj1
		for bi := i0; bi < i1; bi++ {
			if inJ && bi >= ci0 && bi < ci1 {
				if ci0 < ci1 {
					dst = append(dst, l.binIds[l.binStart[row+ci0]:l.binStart[row+ci1]]...)
					bi = ci1 - 1
					continue
				}
			}
			for _, id := range l.binIds[l.binStart[row+bi]:l.binStart[row+bi+1]] {
				r := &master[id].Rect
				if r.MinX < space.MaxX && space.MinX < r.MaxX &&
					r.MinY < space.MaxY && space.MinY < r.MaxY {
					dst = append(dst, id)
				}
			}
		}
	}
	slices.Sort(dst[start:])
	return dst, true
}

// SolveWithinIDs is SolveWithin for callers that already know the master
// ids relevant to the space (GI-DS narrows them per index cell). ids
// must contain, in ascending order, every id whose rectangle interior
// intersects the space; the slice is only read and never retained past
// the call.
func (s *Searcher) SolveWithinIDs(space geom.Rect, seedLB float64, ids []int32) {
	if !space.IsValid() || len(s.rects) == 0 || s.err != nil {
		return
	}
	ctx := s.opt.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	bound := kernel.NewBound(s.opt.Delta, s.best)
	bound.SetExternal(s.opt.SharedCap)
	seed := kernel.Item{Space: space, Clip: space, LB: seedLB, Ids: ids}
	pushes, maxHeap, steals, err := kernel.RunCtx(ctx, len(s.workers), s.opt.BatchSize, []kernel.Item{seed}, bound,
		func(wid int, it kernel.Item, incumbent asp.Result, emit func(kernel.Item)) asp.Result {
			w := s.workers[wid]
			w.beginItem(incumbent)
			w.processSpace(it, emit)
			if it.Pooled {
				w.putIds(it.Ids)
			}
			res := w.cur
			if res.Point == incumbent.Point && res.Dist == incumbent.Dist {
				// Unchanged: hand back the incumbent itself, whose Rep is
				// bound-owned and immutable.
				return incumbent
			}
			// Improved: detach Rep from the worker's scratch, which the
			// next item of this superstep would otherwise overwrite before
			// the merge barrier reads it.
			res.Rep = append([]float64(nil), res.Rep...)
			return res
		},
		func(it kernel.Item) {
			if it.Pooled {
				s.sharedPutIds(it.Ids)
			}
		})
	s.best = bound.Best()
	s.err = err
	s.Stats.HeapPushes += pushes
	s.Stats.Steals += steals
	if maxHeap > s.Stats.MaxHeapSize {
		s.Stats.MaxHeapSize = maxHeap
	}
	for _, w := range s.workers {
		s.Stats.add(w.stats)
		w.stats = Stats{}
	}
}

// sweepCutoff is the rectangle count below which a space is solved
// directly by the exact sweep instead of further discretize/split rounds:
// an O(m²) sweep on m rectangles this small is cheaper than even one more
// grid pass and terminates the whole subtree.
const sweepCutoff = 160

// processSpace discretizes one space, prunes, and either stops (drop
// condition / nothing left), runs the safety net, or splits and emits the
// two sub-spaces.
func (w *worker) processSpace(it kernel.Item, emit func(kernel.Item)) {
	w.s.ensureScratch()
	if len(it.Ids) <= sweepCutoff && !w.s.opt.DisableSafetyNet {
		w.one[0] = cellInfo{rect: it.Space}
		w.miniSweep(w.one[:], it.Ids)
		return
	}
	w.stats.Discretizations++
	dirty, drop := w.discretize(it.Space, it.Clip, it.Ids)
	if len(dirty) == 0 {
		return
	}
	if drop {
		if !w.s.opt.DisableSafetyNet {
			w.miniSweep(dirty, it.Ids)
		}
		return
	}
	if len(dirty) == 1 {
		// Nothing to partition: recurse into the single cell's extent.
		w.push(emit, dirty[0].rect, dirty[0].lb, it)
		return
	}
	g1, lb1, g2, lb2 := split(dirty)
	w.stats.Splits++
	w.push(emit, g1, lb1, it)
	w.push(emit, g2, lb2, it)
}

// childIds filters the parent's ids down to those intersecting space,
// into a recycled slice sized by the binary-searched window.
func (w *worker) childIds(parent []int32, space geom.Rect) []int32 {
	t := w.s.tab
	lo, hi := 0, len(parent)
	if t.sorted {
		x0 := space.MinX - t.wmax
		lo = sort.Search(len(parent), func(k int) bool { return t.minXs[parent[k]] > x0 })
		if h := sort.Search(len(parent), func(k int) bool { return t.minXs[parent[k]] >= space.MaxX }); h < hi {
			hi = h
		}
		if lo > hi {
			lo = hi
		}
	}
	out := w.getIds(hi - lo)
	master := w.s.rects
	for _, id := range parent[lo:hi] {
		r := &master[id].Rect
		if r.MinX < space.MaxX && space.MinX < r.MaxX &&
			r.MinY < space.MaxY && space.MinY < r.MaxY {
			out = append(out, id)
		}
	}
	return out
}

// push emits a child space, guarding against non-shrinking children
// (which would never satisfy the drop condition) by bisecting instead.
func (w *worker) push(emit func(kernel.Item), child geom.Rect, lb float64, parent kernel.Item) {
	if lb >= w.threshold() {
		return
	}
	// The child's clip: lower edges coincide with the child space (cell
	// edges never undershoot), upper edges take the ancestor minimum.
	clipOf := func(space geom.Rect) geom.Rect {
		cl := space
		if parent.Clip.MaxX < cl.MaxX {
			cl.MaxX = parent.Clip.MaxX
		}
		if parent.Clip.MaxY < cl.MaxY {
			cl.MaxY = parent.Clip.MaxY
		}
		return cl
	}
	const shrink = 0.999 // child must be meaningfully smaller in some axis
	if child.Width() > parent.Space.Width()*shrink && child.Height() > parent.Space.Height()*shrink {
		w.stats.Bisections++
		var left, right geom.Rect
		if child.Width() >= child.Height() {
			mid := (child.MinX + child.MaxX) / 2
			left = geom.Rect{MinX: child.MinX, MinY: child.MinY, MaxX: mid, MaxY: child.MaxY}
			right = geom.Rect{MinX: mid, MinY: child.MinY, MaxX: child.MaxX, MaxY: child.MaxY}
		} else {
			mid := (child.MinY + child.MaxY) / 2
			left = geom.Rect{MinX: child.MinX, MinY: child.MinY, MaxX: child.MaxX, MaxY: mid}
			right = geom.Rect{MinX: child.MinX, MinY: mid, MaxX: child.MaxX, MaxY: child.MaxY}
		}
		emit(kernel.Item{Space: left, Clip: clipOf(left), LB: lb, Ids: w.childIds(parent.Ids, left), Pooled: true})
		emit(kernel.Item{Space: right, Clip: clipOf(right), LB: lb, Ids: w.childIds(parent.Ids, right), Pooled: true})
		return
	}
	emit(kernel.Item{Space: child, Clip: clipOf(child), LB: lb, Ids: w.childIds(parent.Ids, child), Pooled: true})
}

// miniSweep runs the Base algorithm restricted to the MBR of the surviving
// dirty cells; see DESIGN.md §3 "Exactness safety net". The worker's
// sweep solver is rebound in place, so steady-state sweeps reuse all of
// their scratch.
func (w *worker) miniSweep(dirty []cellInfo, ids []int32) {
	mbr := geom.EmptyRect()
	for _, c := range dirty {
		mbr = mbr.Union(c.rect)
	}
	master := w.s.rects
	w.swSub = w.swSub[:0]
	for _, id := range ids {
		r := &master[id].Rect
		if r.MinX < mbr.MaxX && mbr.MinX < r.MaxX && r.MinY < mbr.MaxY && mbr.MinY < r.MaxY {
			w.swSub = append(w.swSub, master[id])
		}
	}
	w.stats.MiniSweeps++
	w.stats.MiniSweepRects += len(w.swSub)
	if w.sw == nil {
		// Fallback when the batch pool could not be built; the pool path
		// assigns solvers in ensureScratch.
		sw, err := sweep.New(w.swSub, w.s.query)
		if err != nil {
			return // query was validated at construction; unreachable
		}
		w.sw = sw
		w.sw.SetIncremental(w.s.tab.allExact)
		if w.s.tab.allExact {
			w.sw.SetFixedPoint(w.s.tab.chScale, w.s.tab.chInv)
		}
		w.sw.SetStripMode(w.s.stripMode())
		w.sw.SetStripCost(stripCostModel())
	} else {
		w.sw.Rebind(w.swSub)
	}
	// The solver's counters accumulate across rebinds (pooled solvers
	// serve many sweeps); fold only this sweep's strip-evaluator deltas
	// into the worker stats.
	before := w.sw.Stats
	// The incumbent's distance caps candidate evaluation: improve()
	// discards anything scoring above it (ties included — the cap is
	// open at cur.Dist), so those candidates may abandon their distance
	// march early. The returned result can then be the +Inf sentinel,
	// which improve() rejects like any other loser.
	if r, ok := w.sw.SolveWithinCapped(mbr, w.cur.Dist); ok && r.Rep != nil {
		w.improve(r.Dist, r.Point, r.Rep)
	}
	w.stats.FlatStrips += w.sw.Stats.FlatStrips - before.FlatStrips
	w.stats.FenwickStrips += w.sw.Stats.FenwickStrips - before.FenwickStrips
}

// PointRepresentation computes F(p) exactly over the master set,
// restricted to the binary-searched MinX window when the master is
// sorted. Bit-identical to asp.PointRepresentation: the covering
// rectangles are visited in the same master order, through the same
// accumulator (the window merely skips rectangles that cannot cover p).
func (s *Searcher) PointRepresentation(p geom.Point) []float64 {
	t := s.tab
	out := make([]float64, s.query.F.Dims())
	lo, hi := 0, len(s.rects)
	if t.sorted {
		lo, hi = t.windowLo(p.X-t.wmax), t.windowHi(p.X)
		if lo > hi {
			lo = hi
		}
	}
	acc := agg.NewAccumulator(s.query.F)
	for i := lo; i < hi; i++ {
		if s.rects[i].Rect.ContainsOpen(p) {
			acc.Add(s.rects[i].Obj)
		}
	}
	acc.Representation(out)
	return out
}

// Best returns the current best result (valid during and after a solve;
// used by the grid-index driver to thread d_opt across cells).
func (s *Searcher) Best() asp.Result { return s.best }

// Err reports whether a solve was cut short by Options.Ctx
// (context.Canceled or context.DeadlineExceeded, nil otherwise). Once
// set, further Solve calls on this searcher are no-ops; the partial
// incumbent in Best() is NOT the search answer and front doors must
// surface the error instead of it.
func (s *Searcher) Err() error { return s.err }

// SeedBest installs an externally found incumbent (GI-DS threads its
// running optimum through successive DS-Search invocations).
func (s *Searcher) SeedBest(r asp.Result) { s.best = r }

// Rects returns the searcher's master rectangle array (read-only; the
// order may differ from the constructor argument when the incremental
// layer sorted it).
func (s *Searcher) Rects() []asp.RectObject { return s.rects }

// SolveASRSExcluding solves the ASRS problem restricted to answer regions
// that do not overlap the exclude rectangle (beyond shared boundary).
// This supports query-by-example with a real query region, where the
// query region itself would otherwise be the trivial zero-distance
// answer (§7.6's case study: query "Orchard", answer "Marina Bay").
// Requires the default top-right-corner anchor.
func SolveASRSExcluding(ds *attr.Dataset, a, b float64, q asp.Query, exclude geom.Rect, opt Options) (geom.Rect, asp.Result, Stats, error) {
	if opt.Anchor != asp.AnchorTR {
		return geom.Rect{}, asp.Result{}, Stats{}, fmt.Errorf("dssearch: exclusion requires the top-right-corner anchor")
	}
	rects, err := asp.Reduce(ds, a, b, opt.Anchor)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	s, err := NewSearcherOwning(rects, q, opt)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	defer s.Release()
	space := asp.Space(s.rects)
	s.best = s.emptyResult(space)
	if len(s.rects) > 0 {
		// Bottom-left corners whose region would overlap the excluded
		// rectangle form its Minkowski expansion by (a, b) toward min.
		forbidden := geom.Rect{MinX: exclude.MinX - a, MinY: exclude.MinY - b, MaxX: exclude.MaxX, MaxY: exclude.MaxY}
		for _, sub := range subtractRect(space, forbidden) {
			s.SolveWithin(sub, 0)
		}
	}
	if err := s.Err(); err != nil {
		return geom.Rect{}, asp.Result{}, s.Stats, err
	}
	s.best.Rep = s.PointRepresentation(s.best.Point)
	s.best.Dist = s.query.Distance(s.best.Rep)
	region := opt.Anchor.RegionFor(s.best.Point, a, b)
	return region, s.best, s.Stats, nil
}

// SolveASRSTopK returns up to k non-overlapping similar regions in
// increasing distance order: the greedy sequence "best region, best
// region not overlapping the first, …". An optional extra exclusion
// (typically the example query region) applies to every answer. This is
// an extension beyond the paper, built from the same machinery.
func SolveASRSTopK(ds *attr.Dataset, a, b float64, q asp.Query, k int, exclude []geom.Rect, opt Options) ([]geom.Rect, []asp.Result, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("dssearch: top-k requires k >= 1, got %d", k)
	}
	if opt.Anchor != asp.AnchorTR {
		return nil, nil, fmt.Errorf("dssearch: top-k requires the top-right-corner anchor")
	}
	rects, err := asp.Reduce(ds, a, b, opt.Anchor)
	if err != nil {
		return nil, nil, err
	}
	space := asp.Space(rects)
	excl := append([]geom.Rect(nil), exclude...)
	var regions []geom.Rect
	var results []asp.Result
	for i := 0; i < k; i++ {
		s, err := NewSearcherOwning(rects, q, opt)
		if err != nil {
			return nil, nil, err
		}
		s.best = s.emptyResult(space)
		if len(rects) > 0 {
			pieces := []geom.Rect{space}
			for _, e := range excl {
				forbidden := geom.Rect{MinX: e.MinX - a, MinY: e.MinY - b, MaxX: e.MaxX, MaxY: e.MaxY}
				var next []geom.Rect
				for _, p := range pieces {
					next = append(next, subtractRect(p, forbidden)...)
				}
				pieces = next
			}
			for _, p := range pieces {
				s.SolveWithin(p, 0)
			}
		}
		if err := s.Err(); err != nil {
			s.Release()
			return nil, nil, err
		}
		s.best.Rep = s.PointRepresentation(s.best.Point)
		s.best.Dist = s.query.Distance(s.best.Rep)
		region := opt.Anchor.RegionFor(s.best.Point, a, b)
		regions = append(regions, region)
		results = append(results, s.best)
		excl = append(excl, region)
		s.Release()
	}
	return regions, results, nil
}

// subtractRect returns up to four rectangles covering space minus the
// open interior of f.
func subtractRect(space, f geom.Rect) []geom.Rect {
	if !space.IntersectsOpen(f) {
		return []geom.Rect{space}
	}
	var out []geom.Rect
	add := func(r geom.Rect) {
		if r.IsValid() && !r.IsEmpty() {
			out = append(out, r)
		}
	}
	add(geom.Rect{MinX: space.MinX, MinY: space.MinY, MaxX: f.MinX, MaxY: space.MaxY}) // left
	add(geom.Rect{MinX: f.MaxX, MinY: space.MinY, MaxX: space.MaxX, MaxY: space.MaxY}) // right
	mid := geom.Rect{MinX: max(space.MinX, f.MinX), MaxX: min(space.MaxX, f.MaxX)}
	add(geom.Rect{MinX: mid.MinX, MinY: space.MinY, MaxX: mid.MaxX, MaxY: f.MinY}) // bottom
	add(geom.Rect{MinX: mid.MinX, MinY: f.MaxY, MaxX: mid.MaxX, MaxY: space.MaxY}) // top
	return out
}

// ReduceForSearch performs the ASP reduction for a search unless a
// valid Prepared shape (Options.Prepared built by Pyramid.Prepare for
// exactly this dataset, composite and extent) short-circuits it: the
// prepared master is bound inside newSearcher, so no per-query
// rectangle array is materialized at all. The returned slice is nil
// exactly when the Prepared shape applies.
func ReduceForSearch(ds *attr.Dataset, a, b float64, f *agg.Composite, opt Options) ([]asp.RectObject, error) {
	if opt.Prepared.For(ds, f, a, b) && opt.Anchor == asp.AnchorTR {
		return nil, nil
	}
	return asp.Reduce(ds, a, b, opt.Anchor)
}

// SolveASRS is the package front door: it solves the ASRS problem for a
// dataset directly. It reduces to ASP (Definition 5), runs DS-Search, and
// returns the answer region (Theorem 1) along with the answer
// representation and distance.
func SolveASRS(ds *attr.Dataset, a, b float64, q asp.Query, opt Options) (geom.Rect, asp.Result, Stats, error) {
	rects, err := ReduceForSearch(ds, a, b, q.F, opt)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	s, err := NewSearcherOwning(rects, q, opt)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	defer s.Release()
	res := s.Solve()
	if err := s.Err(); err != nil {
		return geom.Rect{}, asp.Result{}, s.Stats, err
	}
	region := opt.Anchor.RegionFor(res.Point, a, b)
	return region, res, s.Stats, nil
}
