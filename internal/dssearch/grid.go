package dssearch

import (
	"math"
	"sync"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// cellInfo is one surviving dirty cell: its extent and Equation 1 lower
// bound.
type cellInfo struct {
	rect geom.Rect
	lb   float64
}

// gridBuffers holds the reusable scratch memory of Function Discretize: 2D
// difference arrays for the full- and partial-cover channel grids, a
// partial-cover counter grid, and per-cell min/max slots for average
// aggregators. Buffers are owned by one kernel worker at a time and
// recycled through gridPool across searches; they are zeroed per call.
type gridBuffers struct {
	ncol, nrow int
	chans      int
	mmSlots    int
	dims       int

	diffFull []float64 // (nrow+1)*(ncol+1)*chans difference array
	diffPart []float64 // same layout
	diffCnt  []float64 // (nrow+1)*(ncol+1) partial-cover counts
	mmMin    []float64 // nrow*ncol*mmSlots
	mmMax    []float64

	cbuf []agg.Contrib
	mbuf []agg.MMContrib
	rep  []float64
	lo   []float64
	hi   []float64

	refineBase    []float64
	refineCh      []float64
	refinePartial []*attr.Object
}

func newGridBuffers(ncol, nrow int, f *agg.Composite) *gridBuffers {
	g := &gridBuffers{
		ncol:    ncol,
		nrow:    nrow,
		chans:   f.Channels(),
		mmSlots: f.MinMaxSlots(),
		dims:    f.Dims(),
	}
	pad := (nrow + 1) * (ncol + 1)
	g.diffFull = make([]float64, pad*g.chans)
	g.diffPart = make([]float64, pad*g.chans)
	g.diffCnt = make([]float64, pad)
	if g.mmSlots > 0 {
		g.mmMin = make([]float64, nrow*ncol*g.mmSlots)
		g.mmMax = make([]float64, nrow*ncol*g.mmSlots)
	}
	g.rep = make([]float64, g.dims)
	g.lo = make([]float64, g.dims)
	g.hi = make([]float64, g.dims)
	g.refineBase = make([]float64, g.chans)
	g.refineCh = make([]float64, g.chans)
	return g
}

// gridPool recycles discretization scratch across searches. Shapes are
// checked on Get because the pool may hold buffers from differently
// configured searchers; mismatches are simply dropped for the GC.
var gridPool sync.Pool

func getGridBuffers(ncol, nrow int, f *agg.Composite) *gridBuffers {
	if v := gridPool.Get(); v != nil {
		g := v.(*gridBuffers)
		if g.ncol == ncol && g.nrow == nrow &&
			g.chans == f.Channels() && g.mmSlots == f.MinMaxSlots() && g.dims == f.Dims() {
			return g
		}
	}
	return newGridBuffers(ncol, nrow, f)
}

func putGridBuffers(g *gridBuffers) { gridPool.Put(g) }

func (g *gridBuffers) reset() {
	clearF(g.diffFull)
	clearF(g.diffPart)
	clearF(g.diffCnt)
	for i := range g.mmMin {
		g.mmMin[i] = math.Inf(1)
		g.mmMax[i] = math.Inf(-1)
	}
}

func clearF(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// rangeAdd applies the sparse contributions to the 2D difference array
// diff over cell rows [r0,r1] × cols [c0,c1] (inclusive, assumed valid).
func (g *gridBuffers) rangeAdd(diff []float64, contribs []agg.Contrib, c0, r0, c1, r1 int) {
	w := g.ncol + 1
	a := (r0*w + c0) * g.chans
	b := (r0*w + c1 + 1) * g.chans
	c := ((r1+1)*w + c0) * g.chans
	d := ((r1+1)*w + c1 + 1) * g.chans
	for _, cb := range contribs {
		diff[a+cb.Ch] += cb.V
		diff[b+cb.Ch] -= cb.V
		diff[c+cb.Ch] -= cb.V
		diff[d+cb.Ch] += cb.V
	}
}

// rangeAddCnt bumps the partial-cover counter grid over a cell range.
func (g *gridBuffers) rangeAddCnt(c0, r0, c1, r1 int) {
	w := g.ncol + 1
	g.diffCnt[r0*w+c0]++
	g.diffCnt[r0*w+c1+1]--
	g.diffCnt[(r1+1)*w+c0]--
	g.diffCnt[(r1+1)*w+c1+1]++
}

// mmUpdate folds the min/max contributions into every cell of the range.
func (g *gridBuffers) mmUpdate(mm []agg.MMContrib, c0, r0, c1, r1 int) {
	if len(mm) == 0 {
		return
	}
	for r := r0; r <= r1; r++ {
		base := (r*g.ncol + c0) * g.mmSlots
		for c := c0; c <= c1; c++ {
			for _, m := range mm {
				if m.V < g.mmMin[base+m.Slot] {
					g.mmMin[base+m.Slot] = m.V
				}
				if m.V > g.mmMax[base+m.Slot] {
					g.mmMax[base+m.Slot] = m.V
				}
			}
			base += g.mmSlots
		}
	}
}

// integrate turns the difference arrays into per-cell values via a 2D
// prefix sum (in place; cell (c,r) value lands at index (r*(ncol+1)+c)).
func (g *gridBuffers) integrate() {
	w := g.ncol + 1
	h := g.nrow + 1
	integ2D(g.diffFull, w, h, g.chans)
	integ2D(g.diffPart, w, h, g.chans)
	integ2D(g.diffCnt, w, h, 1)
}

func integ2D(v []float64, w, h, chans int) {
	// Prefix along columns within each row.
	for r := 0; r < h; r++ {
		row := r * w * chans
		for c := 1; c < w; c++ {
			a := row + c*chans
			b := a - chans
			for ch := 0; ch < chans; ch++ {
				v[a+ch] += v[b+ch]
			}
		}
	}
	// Prefix along rows within each column.
	for r := 1; r < h; r++ {
		cur := r * w * chans
		prev := cur - w*chans
		for i := 0; i < w*chans; i++ {
			v[cur+i] += v[prev+i]
		}
	}
}

// cellIdx returns the flat index of cell (c,r) in the integrated arrays.
func (g *gridBuffers) cellIdx(c, r int) int { return r*(g.ncol+1) + c }

// discretize implements Function Discretize (paper §4.3): it grids the
// space, classifies cells, evaluates clean cells exactly (updating the
// worker's incumbent), bounds dirty cells, and returns the dirty cells
// whose lower bound survives the pruning threshold, plus whether the
// space satisfies the drop condition (Definition 8). The returned slice
// is worker-owned scratch, valid until the next discretize call.
func (w *worker) discretize(space geom.Rect, rects []asp.RectObject) ([]cellInfo, bool) {
	if w.grid == nil {
		// Acquired lazily at first use: GI-DS runs SolveWithinSubset once
		// per index cell, and cells at or below the sweep cutoff never
		// discretize at all.
		w.grid = getGridBuffers(w.s.opt.NCol, w.s.opt.NRow, w.s.query.F)
	}
	g := w.grid
	query := &w.s.query
	ncol, nrow := g.ncol, g.nrow
	cw := space.Width() / float64(ncol)
	chh := space.Height() / float64(nrow)
	if cw <= 0 || chh <= 0 {
		// Degenerate (zero-area) space: fall back to an exact line sweep.
		w.one[0] = cellInfo{rect: space}
		w.miniSweep(w.one[:], rects)
		return nil, true
	}
	g.reset()

	cellX := func(i int) float64 { return space.MinX + float64(i)*cw }
	cellY := func(j int) float64 { return space.MinY + float64(j)*chh }

	for i := range rects {
		r := rects[i].Rect
		// Columns whose open interior intersects the rect interior.
		c0, c1 := overlapRange(r.MinX, r.MaxX, space.MinX, cw, ncol)
		r0, r1 := overlapRange(r.MinY, r.MaxY, space.MinY, chh, nrow)
		if c0 > c1 || r0 > r1 {
			continue
		}
		// Fully covered sub-range: every point of the cell interior is
		// strictly inside the rect (closed cell ⊆ closed rect suffices for
		// interiors; see DESIGN.md "Coverage semantics").
		fc0, fc1 := fullRange(c0, c1, r.MinX, r.MaxX, space.MinX, cw)
		fr0, fr1 := fullRange(r0, r1, r.MinY, r.MaxY, space.MinY, chh)

		g.cbuf = query.F.AppendContribs(rects[i].Obj, g.cbuf[:0])
		if g.mmSlots > 0 {
			g.mbuf = query.F.AppendMM(rects[i].Obj, g.mbuf[:0])
		}

		if fc0 <= fc1 && fr0 <= fr1 {
			g.rangeAdd(g.diffFull, g.cbuf, fc0, fr0, fc1, fr1)
			// Partial ring: the overlap range minus the full range, as up
			// to four rectangles.
			w.applyPartial(c0, r0, c1, fr0-1) // bottom rows
			w.applyPartial(c0, fr1+1, c1, r1) // top rows
			w.applyPartial(c0, fr0, fc0-1, fr1)
			w.applyPartial(fc1+1, fr0, c1, fr1)
		} else {
			w.applyPartial(c0, r0, c1, r1)
		}
	}

	g.integrate()

	// Pass 1: clean cells refine the incumbent so that pass 2 prunes
	// against the tightest d_opt.
	for r := 0; r < nrow; r++ {
		for c := 0; c < ncol; c++ {
			idx := g.cellIdx(c, r)
			if g.diffCnt[idx] != 0 {
				continue
			}
			w.stats.CleanCells++
			full := g.diffFull[idx*g.chans : (idx+1)*g.chans]
			query.F.FinalizeExact(full, g.rep)
			if d := query.Distance(g.rep); d <= w.cur.Dist {
				w.improve(d, geom.Point{X: cellX(c) + cw/2, Y: cellY(r) + chh/2}, g.rep)
			}
		}
	}

	// Pass 2: bound and filter dirty cells.
	dirty := w.dirty[:0]
	thresh := w.threshold()
	scanBudget := refineScanBudget
	for r := 0; r < nrow; r++ {
		for c := 0; c < ncol; c++ {
			idx := g.cellIdx(c, r)
			if g.diffCnt[idx] == 0 {
				continue
			}
			w.stats.DirtyCells++
			full := g.diffFull[idx*g.chans : (idx+1)*g.chans]
			part := g.diffPart[idx*g.chans : (idx+1)*g.chans]
			var mmMin, mmMax []float64
			if g.mmSlots > 0 {
				mi := (r*ncol + c) * g.mmSlots
				mmMin = g.mmMin[mi : mi+g.mmSlots]
				mmMax = g.mmMax[mi : mi+g.mmSlots]
			}
			query.F.FinalizeBounds(full, part, mmMin, mmMax, g.lo, g.hi)
			lb := query.LowerBoundInt(g.lo, g.hi, w.s.isInt)
			cell := geom.Rect{MinX: cellX(c), MinY: cellY(r), MaxX: cellX(c + 1), MaxY: cellY(r + 1)}
			if lb < thresh && !w.s.opt.DisableRefinement && scanBudget >= len(rects) {
				scanBudget -= len(rects)
				// Interval bounds admit unachievable mixtures (Equation 1's
				// slack); for cells with few partial rectangles an exact
				// minimum over all subset completions is affordable and
				// prunes the boundary-of-optimum tail. Sound: the achievable
				// covering sets are a subset of the enumerated ones.
				if rlb, ok := w.refineCellLB(cell, rects); ok {
					w.stats.RefinedCells++
					if rlb > lb {
						lb = rlb
					}
					if lb >= thresh {
						w.stats.RefinePruned++
					}
				}
			}
			if lb < thresh {
				dirty = append(dirty, cellInfo{rect: cell, lb: lb})
			} else {
				w.stats.PrunedCells++
			}
		}
	}
	w.dirty = dirty

	drop := 2*cw < w.s.acc.DX && 2*chh < w.s.acc.DY
	w.probeCellCenters(dirty, rects)
	return dirty, drop
}

// probeCellCenters evaluates the centers of the most promising surviving
// dirty cells as genuine candidate points. This does not affect
// exactness — any point's distance is a valid incumbent — but it makes
// d_opt converge early on flat distance landscapes, which is what lets
// Equation 1 prune aggressively on workloads like F2 where many regions
// are near-ties.
func (w *worker) probeCellCenters(dirty []cellInfo, rects []asp.RectObject) {
	const probes = 4
	if len(dirty) == 0 {
		return
	}
	// Partial selection of the `probes` lowest lower bounds.
	idx := make([]int, 0, probes)
	for i := range dirty {
		if len(idx) < probes {
			idx = append(idx, i)
			continue
		}
		worst := 0
		for j := 1; j < len(idx); j++ {
			if dirty[idx[j]].lb > dirty[idx[worst]].lb {
				worst = j
			}
		}
		if dirty[i].lb < dirty[idx[worst]].lb {
			idx[worst] = i
		}
	}
	g := w.grid
	query := &w.s.query
	ch := g.refineCh[:g.chans]
	for _, di := range idx {
		p := dirty[di].rect.Center()
		clearF(ch)
		for i := range rects {
			if rects[i].Rect.ContainsOpen(p) {
				g.cbuf = query.F.AppendContribs(rects[i].Obj, g.cbuf[:0])
				for _, cb := range g.cbuf {
					ch[cb.Ch] += cb.V
				}
			}
		}
		query.F.FinalizeExact(ch, g.rep)
		if d := query.Distance(g.rep); d <= w.cur.Dist {
			w.improve(d, p, g.rep)
		}
	}
	w.stats.CenterProbes += len(idx)
}

// applyPartial marks a (possibly empty) cell range as partially covered.
func (w *worker) applyPartial(c0, r0, c1, r1 int) {
	if c0 > c1 || r0 > r1 {
		return
	}
	g := w.grid
	g.rangeAdd(g.diffPart, g.cbuf, c0, r0, c1, r1)
	g.rangeAddCnt(c0, r0, c1, r1)
	g.mmUpdate(g.mbuf, c0, r0, c1, r1)
}

// overlapRange returns the inclusive range [i0, i1] of cells whose open
// interior intersects the open interval (lo, hi); i0 > i1 signals no
// overlap. Cells are [min+i*step, min+(i+1)*step] for i in [0, n). The
// float guesses only seed the exact-comparison walks, so the result is
// consistent with every other min+i*step computation in the package.
func overlapRange(lo, hi, min, step float64, n int) (int, int) {
	// i0: smallest cell with right edge strictly greater than lo.
	i0 := int(math.Floor((lo - min) / step))
	if i0 < 0 {
		i0 = 0
	}
	if i0 > n-1 {
		i0 = n - 1
	}
	for i0 > 0 && min+float64(i0)*step > lo {
		i0--
	}
	for i0 < n && min+float64(i0+1)*step <= lo {
		i0++
	}
	// i1: largest cell with left edge strictly smaller than hi.
	i1 := int(math.Floor((hi - min) / step))
	if i1 < 0 {
		i1 = 0
	}
	if i1 > n-1 {
		i1 = n - 1
	}
	for i1 < n-1 && min+float64(i1+1)*step < hi {
		i1++
	}
	for i1 >= 0 && min+float64(i1)*step >= hi {
		i1--
	}
	return i0, i1
}

// Gates for the subset-enumeration refinement. Each refined cell scans
// the space's rectangle list (O(#rects)), so one discretize gets a total
// scan budget; once exhausted, remaining cells keep their interval bound
// (sound, just looser). Cells with many partial rectangles skip the
// enumeration (O(2^#partial)).
const (
	refineScanBudget = 6 << 20 // rectangle visits per discretize
	refineMaxPartial = 6
)

// refineCellLB computes an exact lower bound for a dirty cell by
// enumerating every completion of the full covering set with a subset of
// the partial rectangles. Returns ok=false when the cell exceeds the
// enumeration gates.
func (w *worker) refineCellLB(cell geom.Rect, rects []asp.RectObject) (float64, bool) {
	g := w.grid
	query := &w.s.query
	base := g.refineBase[:g.chans]
	clearF(base)
	partial := g.refinePartial[:0]
	for i := range rects {
		r := rects[i].Rect
		// Only rectangles whose interior meets the cell interior matter.
		if !(r.MinX < cell.MaxX && cell.MinX < r.MaxX && r.MinY < cell.MaxY && cell.MinY < r.MaxY) {
			continue
		}
		if r.ContainsRect(cell) {
			g.cbuf = query.F.AppendContribs(rects[i].Obj, g.cbuf[:0])
			for _, cb := range g.cbuf {
				base[cb.Ch] += cb.V
			}
			continue
		}
		partial = append(partial, rects[i].Obj)
		if len(partial) > refineMaxPartial {
			g.refinePartial = partial[:0]
			return 0, false
		}
	}
	g.refinePartial = partial[:0]

	best := math.Inf(1)
	ch := g.refineCh[:g.chans]
	for mask := 0; mask < 1<<len(partial); mask++ {
		copy(ch, base)
		for i := range partial {
			if mask&(1<<i) == 0 {
				continue
			}
			g.cbuf = query.F.AppendContribs(partial[i], g.cbuf[:0])
			for _, cb := range g.cbuf {
				ch[cb.Ch] += cb.V
			}
		}
		query.F.FinalizeExact(ch, g.rep)
		if d := query.Distance(g.rep); d < best {
			best = d
		}
	}
	return best, true
}

// fullRange shrinks [c0, c1] to the cells entirely inside [lo, hi]
// (closed containment).
func fullRange(c0, c1 int, lo, hi, min, step float64) (int, int) {
	f0, f1 := c0, c1
	for f0 <= f1 && min+float64(f0)*step < lo {
		f0++
	}
	for f1 >= f0 && min+float64(f1+1)*step > hi {
		f1--
	}
	return f0, f1
}
