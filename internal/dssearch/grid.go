package dssearch

import (
	"math"

	"asrs/internal/agg"
	"asrs/internal/geom"
)

// cellInfo is one surviving dirty cell: its extent and Equation 1 lower
// bound.
type cellInfo struct {
	rect geom.Rect
	lb   float64
}

// gridBuffers holds the reusable scratch memory of Function Discretize:
// 2D difference arrays for the full- and partial-cover channel grids, a
// partial-cover counter grid, per-cell min/max slots for average
// aggregators, the precomputed cell edge coordinates, and the SAT fill's
// per-column/row bin ranges. One gridBuffers is owned by one kernel
// worker for the lifetime of its Searcher — per-worker arena scratch, not
// a global pool, so allocation counts stay flat in the worker count.
type gridBuffers struct {
	ncol, nrow int
	chans      int // grid channel stride: eff space (logical + two-float shadows)
	lchans     int // logical channel count (f.Channels())
	mmSlots    int
	dims       int

	diffFull []float64 // (nrow+1)*(ncol+1)*chans difference array
	diffPart []float64 // same layout
	diffCnt  []float64 // (nrow+1)*(ncol+1) partial-cover counts
	mmMin    []float64 // nrow*ncol*mmSlots
	mmMax    []float64

	xe []float64 // cell edge x coordinates: xe[i] = space.MinX + i*cw
	ye []float64

	// SAT fill scratch: per-cell count+channel accumulators (scaled
	// int64, matching the int64 SAT) and the per-column (x) / per-row
	// (y) interior and outer bin ranges of the full-cover and overlap
	// anchor boxes.
	fullVec, ovVec               []int64
	fxIn0, fxIn1, fxOut0, fxOut1 []int32
	oxIn0, oxIn1, oxOut0, oxOut1 []int32
	fyIn0, fyIn1, fyOut0, fyOut1 []int32
	oyIn0, oyIn1, oyOut0, oyOut1 []int32

	rep []float64
	lo  []float64
	hi  []float64

	// Two-float fold scratch: logical-space views of eff-space cell
	// vectors (tables.fold).
	foldFull []float64
	foldPart []float64

	refineBase    []float64
	refineCh      []float64
	refinePartial []int32
}

// gridFloatSize returns the float-slab footprint of one gridBuffers.
// eff is the grid channel stride (logical channels plus two-float
// shadow planes).
func gridFloatSize(ncol, nrow int, f *agg.Composite, eff int) int {
	pad := (nrow + 1) * (ncol + 1)
	mmSlots, dims := f.MinMaxSlots(), f.Dims()
	return 2*pad*eff + pad + 2*nrow*ncol*mmSlots + (ncol + 1) + (nrow + 1) + 3*dims + 2*eff + 2*f.Channels()
}

// gridInt64Size returns the int64-slab footprint of one gridBuffers:
// the two per-cell SAT accumulators.
func gridInt64Size(eff int) int { return 2 * (eff + 1) }

// newGridBuffersBatch builds n independent gridBuffers out of shared
// slab allocations — one float slab, one int32 slab, one int64 slab,
// one struct array — so a worker pool's discretization scratch costs
// O(1) allocations instead of O(workers), keeping per-op allocation
// counts flat across worker counts.
func newGridBuffersBatch(n, ncol, nrow int, f *agg.Composite, eff int) []gridBuffers {
	if eff < f.Channels() {
		eff = f.Channels()
	}
	gs := make([]gridBuffers, n)
	fper := gridFloatSize(ncol, nrow, f, eff)
	iper := 8*ncol + 8*nrow
	i64per := gridInt64Size(eff)
	fslab := make([]float64, n*fper)
	islab := make([]int32, n*iper)
	i64slab := make([]int64, n*i64per)
	for i := range gs {
		gs[i].init(ncol, nrow, f, eff, fslab[i*fper:(i+1)*fper], islab[i*iper:(i+1)*iper], i64slab[i*i64per:(i+1)*i64per])
	}
	return gs
}

func newGridBuffers(ncol, nrow int, f *agg.Composite, eff int) *gridBuffers {
	return &newGridBuffersBatch(1, ncol, nrow, f, eff)[0]
}

// init carves g's buffers from the provided slabs (sized by
// gridFloatSize, 8*ncol+8*nrow, and gridInt64Size respectively).
func (g *gridBuffers) init(ncol, nrow int, f *agg.Composite, eff int, slab []float64, cols []int32, i64s []int64) {
	*g = gridBuffers{
		ncol:    ncol,
		nrow:    nrow,
		chans:   eff,
		lchans:  f.Channels(),
		mmSlots: f.MinMaxSlots(),
		dims:    f.Dims(),
	}
	pad := (nrow + 1) * (ncol + 1)
	slab = slab[:0]
	carve := func(n int) []float64 {
		slab = slab[:len(slab)+n]
		return slab[len(slab)-n:]
	}
	g.diffFull = carve(pad * g.chans)
	g.diffPart = carve(pad * g.chans)
	g.diffCnt = carve(pad)
	if g.mmSlots > 0 {
		g.mmMin = carve(nrow * ncol * g.mmSlots)
		g.mmMax = carve(nrow * ncol * g.mmSlots)
	}
	g.xe = carve(ncol + 1)
	g.ye = carve(nrow + 1)
	g.fullVec = i64s[:g.chans+1]
	g.ovVec = i64s[g.chans+1 : 2*(g.chans+1)]
	g.fxIn0, cols = cols[:ncol], cols[ncol:]
	g.fxIn1, cols = cols[:ncol], cols[ncol:]
	g.fxOut0, cols = cols[:ncol], cols[ncol:]
	g.fxOut1, cols = cols[:ncol], cols[ncol:]
	g.oxIn0, cols = cols[:ncol], cols[ncol:]
	g.oxIn1, cols = cols[:ncol], cols[ncol:]
	g.oxOut0, cols = cols[:ncol], cols[ncol:]
	g.oxOut1, cols = cols[:ncol], cols[ncol:]
	g.fyIn0, cols = cols[:nrow], cols[nrow:]
	g.fyIn1, cols = cols[:nrow], cols[nrow:]
	g.fyOut0, cols = cols[:nrow], cols[nrow:]
	g.fyOut1, cols = cols[:nrow], cols[nrow:]
	g.oyIn0, cols = cols[:nrow], cols[nrow:]
	g.oyIn1, cols = cols[:nrow], cols[nrow:]
	g.oyOut0, cols = cols[:nrow], cols[nrow:]
	g.oyOut1 = cols[:nrow]
	g.rep = carve(g.dims)
	g.lo = carve(g.dims)
	g.hi = carve(g.dims)
	g.foldFull = carve(g.lchans)
	g.foldPart = carve(g.lchans)
	g.refineBase = carve(g.chans)
	g.refineCh = carve(g.chans)
}

func (g *gridBuffers) reset() {
	clearF(g.diffFull)
	clearF(g.diffPart)
	clearF(g.diffCnt)
	for i := range g.mmMin {
		g.mmMin[i] = math.Inf(1)
		g.mmMax[i] = math.Inf(-1)
	}
}

func clearF(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// rangeAdd applies the sparse contributions to the 2D difference array
// diff over cell rows [r0,r1] × cols [c0,c1] (inclusive, assumed valid).
func (g *gridBuffers) rangeAdd(diff []float64, contribs []agg.Contrib, c0, r0, c1, r1 int) {
	w := g.ncol + 1
	a := (r0*w + c0) * g.chans
	b := (r0*w + c1 + 1) * g.chans
	c := ((r1+1)*w + c0) * g.chans
	d := ((r1+1)*w + c1 + 1) * g.chans
	for _, cb := range contribs {
		diff[a+cb.Ch] += cb.V
		diff[b+cb.Ch] -= cb.V
		diff[c+cb.Ch] -= cb.V
		diff[d+cb.Ch] += cb.V
	}
}

// rangeAddCnt bumps the partial-cover counter grid over a cell range.
func (g *gridBuffers) rangeAddCnt(c0, r0, c1, r1 int) {
	w := g.ncol + 1
	g.diffCnt[r0*w+c0]++
	g.diffCnt[r0*w+c1+1]--
	g.diffCnt[(r1+1)*w+c0]--
	g.diffCnt[(r1+1)*w+c1+1]++
}

// mmUpdate folds the min/max contributions into every cell of the range.
func (g *gridBuffers) mmUpdate(mm []agg.MMContrib, c0, r0, c1, r1 int) {
	if len(mm) == 0 {
		return
	}
	for r := r0; r <= r1; r++ {
		base := (r*g.ncol + c0) * g.mmSlots
		for c := c0; c <= c1; c++ {
			for _, m := range mm {
				if m.V < g.mmMin[base+m.Slot] {
					g.mmMin[base+m.Slot] = m.V
				}
				if m.V > g.mmMax[base+m.Slot] {
					g.mmMax[base+m.Slot] = m.V
				}
			}
			base += g.mmSlots
		}
	}
}

// integrate turns the difference arrays into per-cell values via a 2D
// prefix sum (in place; cell (c,r) value lands at index (r*(ncol+1)+c)).
func (g *gridBuffers) integrate() {
	w := g.ncol + 1
	h := g.nrow + 1
	integ2D(g.diffFull, w, h, g.chans)
	integ2D(g.diffPart, w, h, g.chans)
	integ2D(g.diffCnt, w, h, 1)
}

func integ2D(v []float64, w, h, chans int) {
	// Prefix along columns within each row.
	for r := 0; r < h; r++ {
		row := r * w * chans
		for c := 1; c < w; c++ {
			a := row + c*chans
			b := a - chans
			for ch := 0; ch < chans; ch++ {
				v[a+ch] += v[b+ch]
			}
		}
	}
	// Prefix along rows within each column.
	for r := 1; r < h; r++ {
		cur := r * w * chans
		prev := cur - w*chans
		for i := 0; i < w*chans; i++ {
			v[cur+i] += v[prev+i]
		}
	}
}

// cellIdx returns the flat index of cell (c,r) in the integrated arrays.
func (g *gridBuffers) cellIdx(c, r int) int { return r*(g.ncol+1) + c }

// discretize implements Function Discretize (paper §4.3): it grids the
// space, classifies cells, evaluates clean cells exactly (updating the
// worker's incumbent), bounds dirty cells, and returns the dirty cells
// whose lower bound survives the pruning threshold, plus whether the
// space satisfies the drop condition (Definition 8). The returned slice
// is worker-owned scratch, valid until the next discretize call.
//
// Cell totals come from one of two fills that produce bit-identical
// grids for the integer-exact composites both support: the per-rectangle
// difference-array fill (fillGridDiff), and — for spaces holding at
// least satMinIds rectangles — the query-level summed-area-table fill
// (fillGridSAT), whose cost is independent of the rectangle count.
func (w *worker) discretize(space, clip geom.Rect, ids []int32) ([]cellInfo, bool) {
	if w.grid == nil {
		// Acquired lazily at first use: GI-DS runs SolveWithinIDs once
		// per index cell, and cells at or below the sweep cutoff never
		// discretize at all.
		w.grid = newGridBuffers(w.s.opt.NCol, w.s.opt.NRow, w.s.query.F, w.s.tab.eff)
	}
	g := w.grid
	query := &w.s.query
	ncol, nrow := g.ncol, g.nrow
	cw := space.Width() / float64(ncol)
	chh := space.Height() / float64(nrow)
	if cw <= 0 || chh <= 0 {
		// Degenerate (zero-area) space: fall back to an exact line sweep.
		w.one[0] = cellInfo{rect: space}
		w.miniSweep(w.one[:], ids)
		return nil, true
	}
	for i := 0; i <= ncol; i++ {
		g.xe[i] = space.MinX + float64(i)*cw
	}
	for j := 0; j <= nrow; j++ {
		g.ye[j] = space.MinY + float64(j)*chh
	}

	tab := w.s.tab
	var satLvl *satLevel
	if tab.satUsable() && !w.s.opt.DisableSAT && len(ids) >= satMinIds {
		// Cost-based fill selection: the SAT fill's boundary-ring work is
		// independent of the subset size, so it loses on mid-size subsets
		// (GI-DS cells) where the difference-array fill touches only the
		// subset. Both fills are bit-identical and the estimate depends
		// only on deterministic quantities, so this is purely a
		// performance choice.
		tab.ensureLevels(w.s.rects)
		lvl, satCost := tab.pickLevel(w.s.rects, space, ncol, nrow, cw, chh)
		if satCost < tab.diffCost(len(ids), ncol, nrow) {
			satLvl = lvl
		}
	}
	if satLvl != nil {
		w.fillGridFast(space, clip, ids, cw, chh, satLvl)
		w.stats.SATFills++
	} else {
		w.fillGridDiff(space, ids, cw, chh)
	}

	// Pass 1: clean cells refine the incumbent so that pass 2 prunes
	// against the tightest d_opt.
	for r := 0; r < nrow; r++ {
		for c := 0; c < ncol; c++ {
			idx := g.cellIdx(c, r)
			if g.diffCnt[idx] != 0 {
				continue
			}
			w.stats.CleanCells++
			full := tab.fold(g.foldFull, g.diffFull[idx*g.chans:(idx+1)*g.chans])
			query.F.FinalizeExact(full, g.rep)
			if d := query.Distance(g.rep); d <= w.cur.Dist {
				w.improve(d, geom.Point{X: g.xe[c] + cw/2, Y: g.ye[r] + chh/2}, g.rep)
			}
		}
	}

	// Pass 2: bound and filter dirty cells.
	dirty := w.dirty[:0]
	thresh := w.threshold()
	scanBudget := refineScanBudget
	for r := 0; r < nrow; r++ {
		for c := 0; c < ncol; c++ {
			idx := g.cellIdx(c, r)
			if g.diffCnt[idx] == 0 {
				continue
			}
			w.stats.DirtyCells++
			full := tab.fold(g.foldFull, g.diffFull[idx*g.chans:(idx+1)*g.chans])
			part := tab.fold(g.foldPart, g.diffPart[idx*g.chans:(idx+1)*g.chans])
			var mmMin, mmMax []float64
			if g.mmSlots > 0 {
				mi := (r*ncol + c) * g.mmSlots
				mmMin = g.mmMin[mi : mi+g.mmSlots]
				mmMax = g.mmMax[mi : mi+g.mmSlots]
			}
			query.F.FinalizeBounds(full, part, mmMin, mmMax, g.lo, g.hi)
			lb := query.LowerBoundInt(g.lo, g.hi, w.s.isInt)
			cell := geom.Rect{MinX: g.xe[c], MinY: g.ye[r], MaxX: g.xe[c+1], MaxY: g.ye[r+1]}
			if lb < thresh && !w.s.opt.DisableRefinement {
				cost := w.refineCost(cell, len(ids))
				if scanBudget >= cost {
					scanBudget -= cost
					// Interval bounds admit unachievable mixtures (Equation
					// 1's slack); for cells with few partial rectangles an
					// exact minimum over all subset completions is affordable
					// and prunes the boundary-of-optimum tail. Sound: the
					// achievable covering sets are a subset of the enumerated
					// ones. The cell's partial-cover count is exactly the
					// size of the partial set the enumeration would collect,
					// so cells over the gate skip the scan outright — the
					// same outcome the scan's own bail would reach.
					if g.diffCnt[idx] <= refineMaxPartial {
						if rlb, ok := w.refineCellLB(cell, clip, ids, g.diffFull[idx*g.chans:(idx+1)*g.chans]); ok {
							w.stats.RefinedCells++
							if rlb > lb {
								lb = rlb
							}
							if lb >= thresh {
								w.stats.RefinePruned++
							}
						}
					}
				}
			}
			if lb < thresh {
				dirty = append(dirty, cellInfo{rect: cell, lb: lb})
			} else {
				w.stats.PrunedCells++
			}
		}
	}
	w.dirty = dirty

	drop := 2*cw < w.s.acc.DX && 2*chh < w.s.acc.DY
	w.probeCellCenters(dirty, clip, ids)
	return dirty, drop
}

// fillGridDiff is the per-rectangle difference-array fill: each
// rectangle's channel contributions are range-added into the full- and
// partial-cover grids, then one 2D prefix pass produces per-cell totals.
func (w *worker) fillGridDiff(space geom.Rect, ids []int32, cw, chh float64) {
	g := w.grid
	g.reset()
	w.fillRects(space, ids, cw, chh, false)
	g.integrate()
}

// fillRects is the difference-array pass shared by the classic fill and
// the hybrid fast fill: each rectangle is classified against the cell
// grid once (overlap range, fully-covered sub-range, partial ring) and
// its contributions range-added. failOnly restricts the pass to the
// channels that failed the fixed-point certificate and skips the
// counter grid and min/max folds — in the hybrid fill the SAT side owns
// those — so both fills share one copy of the coverage semantics.
func (w *worker) fillRects(space geom.Rect, ids []int32, cw, chh float64, failOnly bool) {
	g := w.grid
	tab := w.s.tab
	master := w.s.rects
	for _, id := range ids {
		var contribs []agg.Contrib
		var mm []agg.MMContrib
		if failOnly {
			contribs = tab.rectFailContribs(id)
			if len(contribs) == 0 {
				continue
			}
		} else {
			contribs = tab.rectContribs(id)
			if g.mmSlots > 0 {
				mm = tab.rectMM(id)
			}
		}
		r := master[id].Rect
		// Columns whose open interior intersects the rect interior.
		c0, c1 := overlapRange(r.MinX, r.MaxX, space.MinX, cw, g.xe)
		r0, r1 := overlapRange(r.MinY, r.MaxY, space.MinY, chh, g.ye)
		if c0 > c1 || r0 > r1 {
			continue
		}
		// Fully covered sub-range: every point of the cell interior is
		// strictly inside the rect (closed cell ⊆ closed rect suffices for
		// interiors; see DESIGN.md "Coverage semantics").
		fc0, fc1 := fullRange(c0, c1, r.MinX, r.MaxX, g.xe)
		fr0, fr1 := fullRange(r0, r1, r.MinY, r.MaxY, g.ye)

		if fc0 <= fc1 && fr0 <= fr1 {
			g.rangeAdd(g.diffFull, contribs, fc0, fr0, fc1, fr1)
			// Partial ring: the overlap range minus the full range, as up
			// to four rectangles.
			w.applyPartial(contribs, mm, !failOnly, c0, r0, c1, fr0-1) // bottom rows
			w.applyPartial(contribs, mm, !failOnly, c0, fr1+1, c1, r1) // top rows
			w.applyPartial(contribs, mm, !failOnly, c0, fr0, fc0-1, fr1)
			w.applyPartial(contribs, mm, !failOnly, fc1+1, fr0, c1, fr1)
		} else {
			w.applyPartial(contribs, mm, !failOnly, c0, r0, c1, r1)
		}
	}
}

// fillGridFast is the SAT-backed hybrid fill. Channels carrying the
// fixed-point certificate (plus the partial-cover counts and the
// min/max slots) come from the query-level summed-area table and its
// order-statistic companion; channels that failed the certificate come
// from a difference-array pass restricted to just those channels, run
// over the ids in unchanged master order so their float summation order
// — and hence every bit of their totals — matches fillGridDiff.
func (w *worker) fillGridFast(space, clip geom.Rect, ids []int32, cw, chh float64, l *satLevel) {
	g := w.grid
	t := w.s.tab
	if t.sortExact {
		// Every cell value is written by the SAT fill; only the min/max
		// fold identities need re-arming.
		for i := range g.mmMin {
			g.mmMin[i] = math.Inf(1)
			g.mmMax[i] = math.Inf(-1)
		}
	} else {
		g.reset()
		w.fillRects(space, ids, cw, chh, true)
		// Integrate only the channel grids: the SAT fill rewrites the
		// counter grid for every cell, so its prefix pass would be dead
		// work. (Certified channels are all-zero here and integrate to
		// zero before being overwritten — a per-channel skip would cost
		// the inner loops a branch for no measured win.)
		pad := g.ncol + 1
		integ2D(g.diffFull, pad, g.nrow+1, g.chans)
		integ2D(g.diffPart, pad, g.nrow+1, g.chans)
	}
	w.fillGridSAT(clip, l)
}

// fillGridSAT computes per-cell totals from a level of the summed-area
// table: for each cell, the covering rectangles are exactly the anchors
// inside an axis-aligned box in (MinX, MinY) space, so the totals are
// four-corner SAT lookups over the bins certainly inside the box plus
// an exact scan of the boundary bins. It writes the partial-cover
// counts, the certified channels (converted back from scaled int64 at
// emit — exact, so bit-identical to fillGridDiff), and the min/max
// slots (via the order-statistic companion); channels that failed the
// certificates are left untouched for the hybrid difference-array pass.
//
// The SAT counts over the whole master set while the difference-array
// fill only sees the space's subset, so every predicate also carries the
// subset's defining clause — open intersection with the space. This is
// not redundant with the cell conditions: the grid's upper edges are
// space.MinX + i*cw floats that can overshoot space.MaxX, letting a
// boundary cell poke out of the space and "overlap" rectangles the
// subset excludes.
//
// Bin ranges come from the level's id-anchored threshold searches
// (satLevel.xBinLE and friends): a rectangle fully covers column c's
// cells in x iff MinX ≤ xe[c] and MaxX ≥ xe[c+1]; it overlaps them iff
// MinX < xe[c+1] and MaxX > xe[c]. The MaxX conditions translate to
// MinX thresholds through the width range [wmin, wmax]: certainly-true
// and certainly-false bands whose gap lands in the outer-minus-interior
// ring scanned exactly. Every certification is one-sided conservative,
// so the fill result is independent of the level geometry.
func (w *worker) fillGridSAT(clip geom.Rect, l *satLevel) {
	g := w.grid
	t := w.s.tab
	master := w.s.rects
	if l == nil {
		// Callers that made the fill decision already pass the level in;
		// this re-pick exists for direct (test) invocations.
		space := geom.Rect{MinX: g.xe[0], MinY: g.ye[0], MaxX: g.xe[g.ncol], MaxY: g.ye[g.nrow]}
		l, _ = t.pickLevel(master, space, g.ncol, g.nrow, g.xe[1]-g.xe[0], g.ye[1]-g.ye[0])
	}
	ncol, nrow := g.ncol, g.nrow
	chans := g.chans

	// Subset-clause caps, shared by every column/row.
	capLTx := l.xBinLE(master, clip.MaxX, true) // bins < capLTx: MinX < clip.MaxX
	capGEx := l.xBinGT(master, clip.MaxX, true) // bins ≥ capGEx: MinX ≥ clip.MaxX
	capLTy := l.yBinLE(master, clip.MaxY, true)
	capGEy := l.yBinGT(master, clip.MaxY, true)
	for c := 0; c < ncol; c++ {
		g.fxIn1[c] = int32(min(l.xBinLE(master, g.xe[c], false), capLTx))
		g.fxOut1[c] = int32(min(l.xBinGT(master, g.xe[c], false), capGEx))
		g.fxIn0[c] = int32(l.xBinGT(master, g.xe[c+1]-t.wmin, false))
		g.fxOut0[c] = int32(l.xBinLE(master, g.xe[c+1]-t.wmax, true))
		g.oxIn1[c] = int32(min(l.xBinLE(master, g.xe[c+1], true), capLTx))
		g.oxOut1[c] = int32(min(l.xBinGT(master, g.xe[c+1], true), capGEx))
		g.oxIn0[c] = int32(l.xBinGT(master, g.xe[c]-t.wmin, false))
		g.oxOut0[c] = int32(l.xBinLE(master, g.xe[c]-t.wmax, true))
	}
	for r := 0; r < nrow; r++ {
		g.fyIn1[r] = int32(min(l.yBinLE(master, g.ye[r], false), capLTy))
		g.fyOut1[r] = int32(min(l.yBinGT(master, g.ye[r], false), capGEy))
		g.fyIn0[r] = int32(l.yBinGT(master, g.ye[r+1]-t.hmin, false))
		g.fyOut0[r] = int32(l.yBinLE(master, g.ye[r+1]-t.hmax, true))
		g.oyIn1[r] = int32(min(l.yBinLE(master, g.ye[r+1], true), capLTy))
		g.oyOut1[r] = int32(min(l.yBinGT(master, g.ye[r+1], true), capGEy))
		g.oyIn0[r] = int32(l.yBinGT(master, g.ye[r]-t.hmin, false))
		g.oyOut0[r] = int32(l.yBinLE(master, g.ye[r]-t.hmax, true))
	}

	full := g.fullVec
	ov := g.ovVec
	for r := 0; r < nrow; r++ {
		for c := 0; c < ncol; c++ {
			clearI64(full)
			clearI64(ov)
			l.satRegion(int(g.fxIn0[c]), int(g.fxIn1[c]), int(g.fyIn0[r]), int(g.fyIn1[r]), full)
			w.satRing(l, clip, c, r, true, full)
			l.satRegion(int(g.oxIn0[c]), int(g.oxIn1[c]), int(g.oyIn0[r]), int(g.oyIn1[r]), ov)
			w.satRing(l, clip, c, r, false, ov)

			idx := g.cellIdx(c, r)
			g.diffCnt[idx] = float64(ov[0] - full[0])
			df := g.diffFull[idx*chans : (idx+1)*chans]
			dp := g.diffPart[idx*chans : (idx+1)*chans]
			for ch := 0; ch < chans; ch++ {
				if !t.chOK[ch] {
					continue // hybrid pass owns this channel
				}
				// Exact emit: |scaled| ≤ 2^52 so the int64→float64
				// conversion is lossless, and the power-of-two inverse
				// only shifts the exponent.
				df[ch] = float64(full[1+ch]) * t.chInv[ch]
				dp[ch] = float64(ov[1+ch]-full[1+ch]) * t.chInv[ch]
			}
			if g.mmSlots > 0 && ov[0] != full[0] {
				// Clean cells (no partial cover) have nothing to fold —
				// the difference-array path's mmUpdate would leave the
				// ±Inf identities too — and their min/max slots are
				// never read, so skip the companion work entirely.
				w.satCellMM(l, clip, c, r)
			}
		}
	}
}

func clearI64(v []int64) { clear(v) }

// satRing scans the boundary bins of cell (c, r)'s anchor box — the bins
// inside the outer range but not certainly inside the box — testing each
// anchor's rectangle exactly against the cell's full-cover (full=true)
// or overlap condition plus the space-subset clause, and accumulates
// count+scaled channels into acc.
func (w *worker) satRing(l *satLevel, clip geom.Rect, c, r int, full bool, acc []int64) {
	g := w.grid
	t := w.s.tab
	var xi0, xi1, xo0, xo1, yi0, yi1, yo0, yo1 int
	if full {
		xi0, xi1 = int(g.fxIn0[c]), int(g.fxIn1[c])
		xo0, xo1 = int(g.fxOut0[c]), int(g.fxOut1[c])
		yi0, yi1 = int(g.fyIn0[r]), int(g.fyIn1[r])
		yo0, yo1 = int(g.fyOut0[r]), int(g.fyOut1[r])
	} else {
		xi0, xi1 = int(g.oxIn0[c]), int(g.oxIn1[c])
		xo0, xo1 = int(g.oxOut0[c]), int(g.oxOut1[c])
		yi0, yi1 = int(g.oyIn0[r]), int(g.oyIn1[r])
		yo0, yo1 = int(g.oyOut0[r]), int(g.oyOut1[r])
	}
	if xo0 < 0 {
		xo0 = 0
	}
	if yo0 < 0 {
		yo0 = 0
	}
	if xo1 > l.gx {
		xo1 = l.gx
	}
	if yo1 > l.gy {
		yo1 = l.gy
	}
	cellL, cellR := g.xe[c], g.xe[c+1]
	cellB, cellT := g.ye[r], g.ye[r+1]
	master := w.s.rects
	for bj := yo0; bj < yo1; bj++ {
		inJ := bj >= yi0 && bj < yi1
		row := bj * l.gx
		for bi := xo0; bi < xo1; bi++ {
			if inJ && bi >= xi0 && bi < xi1 {
				bi = xi1 - 1 // skip the interior run (already in the SAT sum)
				continue
			}
			for _, id := range l.binIds[l.binStart[row+bi]:l.binStart[row+bi+1]] {
				rc := &master[id].Rect
				if !(rc.MinX < clip.MaxX && clip.MinX < rc.MaxX &&
					rc.MinY < clip.MaxY && clip.MinY < rc.MaxY) {
					continue // not in the chain-filtered subset
				}
				if !(rc.MinX < cellR && rc.MaxX > cellL && rc.MinY < cellT && rc.MaxY > cellB) {
					// Not overlapping the cell. The overlap clause guards the
					// full test too: the difference-array fill only applies
					// full cover inside the overlap range, which differs
					// exactly on degenerate zero-extent cells, where a
					// rectangle can satisfy the closed full conditions while
					// failing the open overlap ones. (Interior bins imply
					// overlap automatically: a < cellL ≤ cellR, etc.)
					continue
				}
				if full && !(rc.MinX <= cellL && rc.MaxX >= cellR && rc.MinY <= cellB && rc.MaxY >= cellT) {
					continue
				}
				acc[0]++
				contribs := t.rectContribs(id)
				scaled := t.rectContribsI(id)
				for k := range contribs {
					acc[1+contribs[k].Ch] += scaled[k]
				}
			}
		}
	}
}

// satCellMM fills cell (c, r)'s min/max slots from the order-statistic
// companion: the partially covering rectangles are the anchors in the
// cell's overlap box minus its full-cover box, so the certainly-partial
// bins — certainly inside the overlap interior and certainly outside
// the full-cover outer box — fold their pre-reduced per-bin min/max via
// O(1) sparse-table region queries, and the remaining boundary bins are
// scanned exactly against the same predicates the difference-array path
// applies per rectangle (overlap, not closed-full, in the clip-filtered
// subset). Min/max folds are order-independent, so the result is
// identical to fillGridDiff's mmUpdate regardless of visit order.
func (w *worker) satCellMM(l *satLevel, clip geom.Rect, c, r int) {
	g := w.grid
	mi := (r*g.ncol + c) * g.mmSlots
	mmMin := g.mmMin[mi : mi+g.mmSlots]
	mmMax := g.mmMax[mi : mi+g.mmSlots]

	ai0, ai1 := int(g.oxIn0[c]), int(g.oxIn1[c]) // certainly-overlap interior box
	aj0, aj1 := int(g.oyIn0[r]), int(g.oyIn1[r])
	if ai0 < 0 {
		ai0 = 0
	}
	if aj0 < 0 {
		aj0 = 0
	}
	bi0, bi1 := int(g.fxOut0[c]), int(g.fxOut1[c]) // full-cover outer box
	bj0, bj1 := int(g.fyOut0[r]), int(g.fyOut1[r])

	// Certainly-partial region: the overlap interior minus the
	// full-cover outer box, decomposed into at most four rectangles,
	// each one O(1) sparse-table region query.
	if bj0 > aj0 { // rows below the full-cover outer box
		l.mm.QueryRegion(aj0, min(aj1, bj0), ai0, ai1, mmMin, mmMax)
	}
	if bj1 < aj1 { // rows above it
		l.mm.QueryRegion(max(aj0, bj1), aj1, ai0, ai1, mmMin, mmMax)
	}
	jm0, jm1 := max(aj0, bj0), min(aj1, bj1) // rows crossing it
	if jm0 < jm1 {
		l.mm.QueryRegion(jm0, jm1, ai0, min(ai1, bi0), mmMin, mmMax)
		l.mm.QueryRegion(jm0, jm1, max(ai0, bi1), ai1, mmMin, mmMax)
	}

	// Boundary bins: everything in the overlap outer box not already
	// folded above and not certainly fully covering (full ⇒ not
	// partial), tested rectangle by rectangle.
	xo0, xo1 := int(g.oxOut0[c]), int(g.oxOut1[c])
	yo0, yo1 := int(g.oyOut0[r]), int(g.oyOut1[r])
	if xo0 < 0 {
		xo0 = 0
	}
	if yo0 < 0 {
		yo0 = 0
	}
	if xo1 > l.gx {
		xo1 = l.gx
	}
	if yo1 > l.gy {
		yo1 = l.gy
	}
	fi0, fi1 := int(g.fxIn0[c]), int(g.fxIn1[c]) // certainly-full interior box
	fj0, fj1 := int(g.fyIn0[r]), int(g.fyIn1[r])
	cellL, cellR := g.xe[c], g.xe[c+1]
	cellB, cellT := g.ye[r], g.ye[r+1]
	master := w.s.rects
	for bj := yo0; bj < yo1; bj++ {
		inAJ := bj >= aj0 && bj < aj1
		clearBJ := inAJ && (bj < bj0 || bj >= bj1) // whole row-run of A is certain
		inFJ := bj >= fj0 && bj < fj1
		row := bj * l.gx
		for bi := xo0; bi < xo1; bi++ {
			if inAJ && bi >= ai0 && bi < ai1 {
				if clearBJ || bi < bi0 || bi >= bi1 {
					if clearBJ && bi1 <= ai0 { // no B overlap ahead in this row
						bi = ai1 - 1
						continue
					}
					continue // folded by the region queries
				}
			}
			if inFJ && bi >= fi0 && bi < fi1 {
				continue // certainly fully covering: never partial
			}
			for _, id := range l.binIds[l.binStart[row+bi]:l.binStart[row+bi+1]] {
				rc := &master[id].Rect
				if !(rc.MinX < clip.MaxX && clip.MinX < rc.MaxX &&
					rc.MinY < clip.MaxY && clip.MinY < rc.MaxY) {
					continue // not in the chain-filtered subset
				}
				if !(rc.MinX < cellR && rc.MaxX > cellL && rc.MinY < cellT && rc.MaxY > cellB) {
					continue // does not overlap the cell interior
				}
				if rc.MinX <= cellL && rc.MaxX >= cellR && rc.MinY <= cellB && rc.MaxY >= cellT {
					continue // fully covers the cell: not partial
				}
				for _, m := range w.s.tab.rectMM(id) {
					if m.V < mmMin[m.Slot] {
						mmMin[m.Slot] = m.V
					}
					if m.V > mmMax[m.Slot] {
						mmMax[m.Slot] = m.V
					}
				}
			}
		}
	}
}

// probeCellCenters evaluates the centers of the most promising surviving
// dirty cells as genuine candidate points. This does not affect
// exactness — any point's distance is a valid incumbent — but it makes
// d_opt converge early on flat distance landscapes, which is what lets
// Equation 1 prune aggressively on workloads like F2 where many regions
// are near-ties.
func (w *worker) probeCellCenters(dirty []cellInfo, clip geom.Rect, ids []int32) {
	const probes = 4
	if len(dirty) == 0 {
		return
	}
	// Partial selection of the `probes` lowest lower bounds.
	idx := make([]int, 0, probes)
	for i := range dirty {
		if len(idx) < probes {
			idx = append(idx, i)
			continue
		}
		worst := 0
		for j := 1; j < len(idx); j++ {
			if dirty[idx[j]].lb > dirty[idx[worst]].lb {
				worst = j
			}
		}
		if dirty[i].lb < dirty[idx[worst]].lb {
			idx[worst] = i
		}
	}
	g := w.grid
	t := w.s.tab
	master := w.s.rects
	query := &w.s.query
	ch := g.refineCh[:g.chans]
	for _, di := range idx {
		p := dirty[di].rect.Center()
		clearF(ch)
		if t.sorted {
			// The rectangles covering p form a binary-searched window of
			// the master order: MinX ∈ (p.X − wmax, p.X). The clip clause
			// restricts the window to the space's chain-filtered subset
			// (a probe point in a boundary cell can poke an ulp outside
			// the clip; see Item.Clip).
			lo := t.windowLo(p.X - t.wmax)
			hi := t.windowHi(p.X)
			for id := lo; id < hi; id++ {
				rc := &master[id].Rect
				if rc.ContainsOpen(p) &&
					rc.MinX < clip.MaxX && clip.MinX < rc.MaxX &&
					rc.MinY < clip.MaxY && clip.MinY < rc.MaxY {
					for _, cb := range t.rectContribs(int32(id)) {
						ch[cb.Ch] += cb.V
					}
				}
			}
		} else {
			for _, id := range ids {
				if master[id].Rect.ContainsOpen(p) {
					for _, cb := range t.rectContribs(id) {
						ch[cb.Ch] += cb.V
					}
				}
			}
		}
		query.F.FinalizeExact(t.fold(g.foldFull, ch), g.rep)
		if d := query.Distance(g.rep); d <= w.cur.Dist {
			w.improve(d, p, g.rep)
		}
	}
	w.stats.CenterProbes += len(idx)
}

// applyPartial marks a (possibly empty) cell range as partially
// covered; cntMM additionally bumps the counter grid and folds the
// min/max slots (false on the hybrid fill's failing-channel pass,
// where the SAT owns both).
func (w *worker) applyPartial(contribs []agg.Contrib, mm []agg.MMContrib, cntMM bool, c0, r0, c1, r1 int) {
	if c0 > c1 || r0 > r1 {
		return
	}
	g := w.grid
	g.rangeAdd(g.diffPart, contribs, c0, r0, c1, r1)
	if cntMM {
		g.rangeAddCnt(c0, r0, c1, r1)
		g.mmUpdate(mm, c0, r0, c1, r1)
	}
}

// overlapRange returns the inclusive range [i0, i1] of cells whose open
// interior intersects the open interval (lo, hi); i0 > i1 signals no
// overlap. Cell edges are precomputed in edges (edges[i] == min+i*step
// bit-for-bit). The float guess only seeds the exact-comparison walks,
// so the result is consistent with every other edge computation in the
// package.
func overlapRange(lo, hi, min, step float64, edges []float64) (int, int) {
	n := len(edges) - 1
	// i0: smallest cell with right edge strictly greater than lo.
	i0 := int(math.Floor((lo - min) / step))
	if i0 < 0 {
		i0 = 0
	}
	if i0 > n-1 {
		i0 = n - 1
	}
	for i0 > 0 && edges[i0] > lo {
		i0--
	}
	for i0 < n && edges[i0+1] <= lo {
		i0++
	}
	// i1: largest cell with left edge strictly smaller than hi.
	i1 := int(math.Floor((hi - min) / step))
	if i1 < 0 {
		i1 = 0
	}
	if i1 > n-1 {
		i1 = n - 1
	}
	for i1 < n-1 && edges[i1+1] < hi {
		i1++
	}
	for i1 >= 0 && edges[i1] >= hi {
		i1--
	}
	return i0, i1
}

// Gates for the subset-enumeration refinement. Each refined cell scans
// the candidate rectangles for its cell (the space's rectangle list, or
// the cell's binary-searched window on sorted masters), so one
// discretize gets a total scan budget; once exhausted, remaining cells
// keep their interval bound (sound, just looser). Cells with many
// partial rectangles skip the enumeration (O(2^#partial)).
const (
	refineScanBudget = 6 << 20 // rectangle visits per discretize
	refineMaxPartial = 6
)

// refineCost returns the number of rectangles a refineCellLB call for
// this cell will scan, for budget accounting.
func (w *worker) refineCost(cell geom.Rect, nIds int) int {
	t := w.s.tab
	if !t.sorted {
		return nIds
	}
	lo := t.windowLo(cell.MinX - t.wmax)
	hi := t.windowHi(cell.MaxX)
	if hi < lo {
		hi = lo
	}
	return hi - lo
}

// refineCellLB computes an exact lower bound for a dirty cell by
// enumerating every completion of the full covering set with a subset of
// the partial rectangles. Returns ok=false when the cell exceeds the
// enumeration gates. cellFull is the cell's full-cover channel totals
// from the grid fill, which the fully certified fast path reuses as the
// enumeration base (exact sums make it bit-identical to re-accumulating
// the containing rectangles) while finding the partial rectangles in
// the cell's 2D anchor-bin box — a fraction of the 1D master-window
// scan, whose x-range spans the full y extent. The budget accounting
// (refineCost) deliberately still charges the window cost, so the
// refinement decisions — and with them the whole search trajectory —
// are identical to the scan path's; the fast path only makes each
// decision cheaper to execute.
func (w *worker) refineCellLB(cell, clip geom.Rect, ids []int32, cellFull []float64) (float64, bool) {
	g := w.grid
	t := w.s.tab
	master := w.s.rects
	query := &w.s.query
	var base []float64
	partial := g.refinePartial[:0]
	if t.sortExact && !w.s.opt.DisableSAT {
		t.ensureLevels(master)
		l, _ := t.pickLevel(master, cell, 1, 1, cell.MaxX-cell.MinX, cell.MaxY-cell.MinY)
		base = cellFull
		// All possibly-overlapping anchors have MinX ∈ (cell.MinX − wmax,
		// cell.MaxX) and MinY ∈ (cell.MinY − hmax, cell.MaxY); each bin
		// row of that box is a contiguous CSR run. Bins certainly inside
		// the cell's full-cover box hold only rectangles that closed-
		// contain the cell — already summed into cellFull (if in the
		// subset) or excluded everywhere (if not) — so the scan skips
		// that interior and walks only the ring where partials can live.
		xo0, xo1 := l.xBinLE(master, cell.MinX-t.wmax, true), l.xBinGT(master, cell.MaxX, true)
		yo0, yo1 := l.yBinLE(master, cell.MinY-t.hmax, true), l.yBinGT(master, cell.MaxY, true)
		fi0, fi1 := l.xBinGT(master, cell.MaxX-t.wmin, false), l.xBinLE(master, cell.MinX, false)
		fj0, fj1 := l.yBinGT(master, cell.MaxY-t.hmin, false), l.yBinLE(master, cell.MinY, false)
		scan := func(lo, hi, row int) bool {
			if lo >= hi {
				return true
			}
			for _, id := range l.binIds[l.binStart[row+lo]:l.binStart[row+hi]] {
				r := &master[id].Rect
				if !(r.MinX < clip.MaxX && clip.MinX < r.MaxX &&
					r.MinY < clip.MaxY && clip.MinY < r.MaxY) {
					continue // outside the space's chain-filtered subset
				}
				if !(r.MinX < cell.MaxX && cell.MinX < r.MaxX && r.MinY < cell.MaxY && cell.MinY < r.MaxY) {
					continue // interior does not meet the cell interior
				}
				if r.ContainsRect(cell) {
					continue // already summed into cellFull by the fill
				}
				partial = append(partial, id)
				if len(partial) > refineMaxPartial {
					return false
				}
			}
			return true
		}
		for bj := yo0; bj < yo1; bj++ {
			row := bj * l.gx
			ok := true
			if bj >= fj0 && bj < fj1 && fi0 < fi1 {
				ok = scan(xo0, min(fi0, xo1), row) && scan(max(xo0, fi1), xo1, row)
			} else {
				ok = scan(xo0, xo1, row)
			}
			if !ok {
				g.refinePartial = partial[:0]
				return 0, false
			}
		}
	} else {
		base = g.refineBase[:g.chans]
		clearF(base)
		consider := func(id int32) bool {
			r := master[id].Rect
			// Only rectangles whose interior meets the cell interior
			// matter.
			if !(r.MinX < cell.MaxX && cell.MinX < r.MaxX && r.MinY < cell.MaxY && cell.MinY < r.MaxY) {
				return true
			}
			if r.ContainsRect(cell) {
				for _, cb := range t.rectContribs(id) {
					base[cb.Ch] += cb.V
				}
				return true
			}
			partial = append(partial, id)
			return len(partial) <= refineMaxPartial
		}
		if t.sorted {
			lo := t.windowLo(cell.MinX - t.wmax)
			hi := t.windowHi(cell.MaxX)
			for id := lo; id < hi; id++ {
				r := &master[id].Rect
				if !(r.MinX < clip.MaxX && clip.MinX < r.MaxX &&
					r.MinY < clip.MaxY && clip.MinY < r.MaxY) {
					continue // outside the space's chain-filtered subset
				}
				if !consider(int32(id)) {
					g.refinePartial = partial[:0]
					return 0, false
				}
			}
		} else {
			for _, id := range ids {
				if !consider(id) {
					g.refinePartial = partial[:0]
					return 0, false
				}
			}
		}
	}
	g.refinePartial = partial[:0]

	best := math.Inf(1)
	ch := g.refineCh[:g.chans]
	for mask := 0; mask < 1<<len(partial); mask++ {
		copy(ch, base)
		for i := range partial {
			if mask&(1<<i) == 0 {
				continue
			}
			for _, cb := range t.rectContribs(partial[i]) {
				ch[cb.Ch] += cb.V
			}
		}
		// ch is an eff-space vector (base and contributions carry the
		// two-float hi/lo planes separately); fold before finalizing or
		// the lo planes would be dropped from the bound.
		query.F.FinalizeExact(t.fold(g.foldFull, ch), g.rep)
		if d := query.Distance(g.rep); d < best {
			best = d
		}
	}
	return best, true
}

// fullRange shrinks [c0, c1] to the cells entirely inside [lo, hi]
// (closed containment).
func fullRange(c0, c1 int, lo, hi float64, edges []float64) (int, int) {
	f0, f1 := c0, c1
	for f0 <= f1 && edges[f0] < lo {
		f0++
	}
	for f1 >= f0 && edges[f1+1] > hi {
		f1--
	}
	return f0, f1
}
