package dssearch_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
)

func TestTopKNonOverlappingAndOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 10; trial++ {
		ds := dataset.Random(60, 60, rng.Int63())
		f := agg.MustNew(ds.Schema,
			agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		)
		target := []float64{float64(rng.Intn(5)), float64(rng.Intn(5)), float64(rng.Intn(5))}
		q := asp.Query{F: f, Target: target}
		const k = 4
		regions, results, err := dssearch.SolveASRSTopK(ds, 7, 7, q, k, nil, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		if len(regions) != k || len(results) != k {
			t.Fatalf("got %d regions, want %d", len(regions), k)
		}
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if regions[i].IntersectsOpen(regions[j]) {
					t.Fatalf("trial %d: regions %d and %d overlap: %v, %v", trial, i, j, regions[i], regions[j])
				}
			}
			if i > 0 && results[i].Dist < results[i-1].Dist-1e-9 {
				t.Fatalf("trial %d: distances not monotone: %g after %g", trial, results[i].Dist, results[i-1].Dist)
			}
		}
		// The first answer must match the unconstrained optimum.
		_, best, _, err := dssearch.SolveASRS(ds, 7, 7, q, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(results[0].Dist-best.Dist) > 1e-9 {
			t.Fatalf("trial %d: top-1 %g != optimum %g", trial, results[0].Dist, best.Dist)
		}
	}
}

func TestTopKRespectsExternalExclusion(t *testing.T) {
	ds := dataset.Random(50, 50, 51)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{3, 3, 3}}
	avoid := geom.Rect{MinX: 10, MinY: 10, MaxX: 30, MaxY: 30}
	regions, _, err := dssearch.SolveASRSTopK(ds, 6, 6, q, 3, []geom.Rect{avoid}, dssearch.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range regions {
		if r.IntersectsOpen(avoid) {
			t.Fatalf("region %d (%v) overlaps exclusion %v", i, r, avoid)
		}
	}
}

func TestTopKValidation(t *testing.T) {
	ds := dataset.Random(5, 10, 52)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{0, 0, 0}}
	if _, _, err := dssearch.SolveASRSTopK(ds, 2, 2, q, 0, nil, dssearch.Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := dssearch.SolveASRSTopK(ds, 2, 2, q, 2, nil, dssearch.Options{Anchor: asp.AnchorBL}); err == nil {
		t.Error("non-TR anchor accepted")
	}
}
