package dssearch_test

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
)

// TestSolveWithinContainsAnswer: the answer region must be contained in
// the extent, and no probe anchor inside the extent may beat it.
func TestSolveWithinContainsAnswer(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for trial := 0; trial < 20; trial++ {
		ds := dataset.Random(40, 50, rng.Int63())
		f := agg.MustNew(ds.Schema,
			agg.Spec{Kind: agg.Distribution, Attr: "cat"},
			agg.Spec{Kind: agg.Sum, Attr: "val"},
		)
		a, b := 8.0, 6.0
		within := geom.Rect{
			MinX: rng.Float64() * 20, MinY: rng.Float64() * 20,
		}
		within.MaxX = within.MinX + a + rng.Float64()*30
		within.MaxY = within.MinY + b + rng.Float64()*30
		q := asp.Query{F: f, Target: make([]float64, f.Dims())}
		for i := range q.Target {
			q.Target[i] = rng.Float64() * 4
		}

		region, res, _, err := dssearch.SolveASRSWithin(ds, a, b, q, within, nil, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !within.ContainsRect(region) {
			t.Fatalf("trial %d: answer %+v escapes extent %+v", trial, region, within)
		}
		// No probe anchor inside the window may beat the answer.
		rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
		win := dssearch.AnchorWindow(within, a, b)
		for probe := 0; probe < 300; probe++ {
			p := geom.Point{
				X: win.MinX + rng.Float64()*(win.MaxX-win.MinX),
				Y: win.MinY + rng.Float64()*(win.MaxY-win.MinY),
			}
			rep := asp.PointRepresentation(rects, f, p)
			if d := q.Distance(rep); d < res.Dist-1e-9 {
				t.Fatalf("trial %d: in-window probe %v beats answer: %g < %g", trial, p, d, res.Dist)
			}
		}
	}
}

// TestSolveWithinTypedErrors: an extent smaller than a×b yields
// ErrExtentTooSmall; exclusions covering the whole window yield
// ErrNoFeasibleRegion.
func TestSolveWithinTypedErrors(t *testing.T) {
	ds := dataset.Random(20, 40, 5)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: make([]float64, f.Dims())}
	opt := dssearch.Options{NCol: 8, NRow: 8}

	small := geom.Rect{MinX: 0, MinY: 0, MaxX: 5, MaxY: 5}
	if _, _, _, err := dssearch.SolveASRSWithin(ds, 8, 8, q, small, nil, opt); !errors.Is(err, dssearch.ErrExtentTooSmall) {
		t.Fatalf("small extent: err = %v, want ErrExtentTooSmall", err)
	}

	within := geom.Rect{MinX: 0, MinY: 0, MaxX: 20, MaxY: 20}
	blocker := geom.Rect{MinX: -10, MinY: -10, MaxX: 40, MaxY: 40}
	if _, _, _, err := dssearch.SolveASRSWithin(ds, 8, 8, q, within, []geom.Rect{blocker}, opt); !errors.Is(err, dssearch.ErrNoFeasibleRegion) {
		t.Fatalf("blocked extent: err = %v, want ErrNoFeasibleRegion", err)
	}
}

// TestSolveWithinExactFit: an extent exactly a×b admits a single anchor;
// the answer must be that region with its exact representation.
func TestSolveWithinExactFit(t *testing.T) {
	ds := dataset.Random(25, 40, 9)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: make([]float64, f.Dims())}
	a, b := 7.0, 5.0
	within := geom.Rect{MinX: 11, MinY: 13, MaxX: 11 + a, MaxY: 13 + b}
	region, res, _, err := dssearch.SolveASRSWithin(ds, a, b, q, within, nil, dssearch.Options{NCol: 8, NRow: 8})
	if err != nil {
		t.Fatal(err)
	}
	if region != within {
		t.Fatalf("exact-fit answer = %+v, want the extent %+v", region, within)
	}
	rects, _ := asp.Reduce(ds, a, b, asp.AnchorTR)
	want := asp.PointRepresentation(rects, f, geom.Point{X: within.MinX, Y: within.MinY})
	if q.Distance(want) != res.Dist {
		t.Fatalf("exact-fit dist = %g, want %g", res.Dist, q.Distance(want))
	}
}

// TestSolveWithinEmptyCorpus: with no objects the best in-extent region
// is an empty-coverage region; the distance must be the empty
// representation's.
func TestSolveWithinEmptyCorpus(t *testing.T) {
	ds := dataset.Random(0, 40, 11)
	f := agg.MustNew(ds.Schema, agg.Spec{Kind: agg.Distribution, Attr: "cat"})
	q := asp.Query{F: f, Target: []float64{1, 2, 3}}
	within := geom.Rect{MinX: 0, MinY: 0, MaxX: 30, MaxY: 30}
	region, res, _, err := dssearch.SolveASRSWithin(ds, 8, 8, q, within, nil, dssearch.Options{NCol: 8, NRow: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !within.ContainsRect(region) {
		t.Fatalf("empty-corpus answer %+v escapes extent %+v", region, within)
	}
	rep := make([]float64, f.Dims())
	if want := q.Distance(rep); res.Dist != want {
		t.Fatalf("empty-corpus dist = %g, want empty representation distance %g", res.Dist, want)
	}
}

// TestSolveWithinCorpusIndependence is the contained-routing exactness
// claim in miniature: two corpora that agree on the objects whose
// anchor rectangles can reach the window produce Float64bits-identical
// answers — the foundation of the shard router's contained fast path.
func TestSolveWithinCorpusIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		full := dataset.Random(60, 80, rng.Int63())
		f := agg.MustNew(full.Schema,
			agg.Spec{Kind: agg.Distribution, Attr: "cat"},
			agg.Spec{Kind: agg.Sum, Attr: "val"},
		)
		a, b := 9.0, 9.0
		within := geom.Rect{MinX: 20, MinY: 10, MaxX: 50, MaxY: 45}
		// Subset: only objects whose anchor rect can intersect the
		// window (x in (within.MinX, within.MaxX), conservatively wider).
		subset := *full
		subset.Objects = nil
		for _, o := range full.Objects {
			if o.Loc.X > within.MinX-1e-9 && o.Loc.X < within.MaxX+1e-9 {
				subset.Objects = append(subset.Objects, o)
			}
		}
		q := asp.Query{F: f, Target: make([]float64, f.Dims())}
		for i := range q.Target {
			q.Target[i] = rng.Float64() * 3
		}
		opt := dssearch.Options{NCol: 10, NRow: 10}
		r1, res1, _, err1 := dssearch.SolveASRSWithin(full, a, b, q, within, nil, opt)
		r2, res2, _, err2 := dssearch.SolveASRSWithin(&subset, a, b, q, within, nil, opt)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if r1 != r2 || math.Float64bits(res1.Dist) != math.Float64bits(res2.Dist) ||
			res1.Point != res2.Point {
			t.Fatalf("trial %d: corpus-dependent window answer: %+v/%v vs %+v/%v", trial, r1, res1.Dist, r2, res2.Dist)
		}
		for i := range res1.Rep {
			if math.Float64bits(res1.Rep[i]) != math.Float64bits(res2.Rep[i]) {
				t.Fatalf("trial %d: rep[%d] differs", trial, i)
			}
		}
	}
}
