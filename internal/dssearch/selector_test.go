package dssearch_test

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/dssearch"
	"asrs/internal/sweep"
)

// selectiveQuery exercises non-trivial selection functions γ end to end:
// a distribution over all objects, an average over only category "a"
// objects, and a sum over objects with positive values.
func selectiveQuery(t testing.TB, ds *attr.Dataset, rng *rand.Rand) asp.Query {
	t.Helper()
	catIdx := ds.Schema.Index("cat")
	valIdx := ds.Schema.Index("val")
	f, err := agg.New(ds.Schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Average, Attr: "val", Select: attr.SelectCategory(catIdx, 0)},
		agg.Spec{Kind: agg.Sum, Attr: "val", Select: attr.SelectNumRange(valIdx, 0, 10)},
	)
	if err != nil {
		t.Fatal(err)
	}
	target := make([]float64, f.Dims())
	w := make([]float64, f.Dims())
	for i := range target {
		target[i] = rng.NormFloat64() * 4
		w[i] = 0.1 + rng.Float64()
	}
	return asp.Query{F: f, Target: target, W: w}
}

// TestSelectorsEndToEnd: DS-Search with selective γ matches the sweep.
func TestSelectorsEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 30; trial++ {
		ds := dataset.Random(1+rng.Intn(50), 50, rng.Int63())
		rects, _ := asp.Reduce(ds, 7, 9, asp.AnchorTR)
		q := selectiveQuery(t, ds, rng)
		sw, _ := sweep.New(rects, q)
		want := sw.Solve()
		s, err := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 10, NRow: 10})
		if err != nil {
			t.Fatal(err)
		}
		got := s.Solve()
		if math.Abs(got.Dist-want.Dist) > 1e-9 {
			t.Fatalf("trial %d: selective γ: %g vs %g", trial, got.Dist, want.Dist)
		}
	}
}

// TestDisableRefinementStillExact: the ablation knob changes work, not
// answers.
func TestDisableRefinementStillExact(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		ds := dataset.Random(1+rng.Intn(30), 40, rng.Int63())
		rects, _ := asp.Reduce(ds, 6, 6, asp.AnchorTR)
		q := selectiveQuery(t, ds, rng)
		on, _ := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 10, NRow: 10})
		off, _ := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 10, NRow: 10, DisableRefinement: true})
		a := on.Solve()
		b := off.Solve()
		if math.Abs(a.Dist-b.Dist) > 1e-9 {
			t.Fatalf("trial %d: refinement changed the answer: %g vs %g", trial, a.Dist, b.Dist)
		}
		if off.Stats.RefinedCells != 0 {
			t.Fatalf("refinement ran while disabled: %+v", off.Stats)
		}
	}
}

// TestDisableSafetyNetUsuallyExact: with the paper's bare pseudocode
// (no safety net) the answer still matches on generic instances — the
// net exists for the adversarial corner cases, and disabling it must not
// crash or loop.
func TestDisableSafetyNetRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		ds := dataset.Random(1+rng.Intn(30), 40, rng.Int63())
		rects, _ := asp.Reduce(ds, 6, 6, asp.AnchorTR)
		q := selectiveQuery(t, ds, rng)
		s, _ := dssearch.NewSearcher(rects, q, dssearch.Options{NCol: 10, NRow: 10, DisableSafetyNet: true})
		got := s.Solve()
		sw, _ := sweep.New(rects, q)
		want := sw.Solve()
		// The optimum from clean cells alone can only be ≥ the true one.
		if got.Dist < want.Dist-1e-9 {
			t.Fatalf("trial %d: impossible better-than-exact %g < %g", trial, got.Dist, want.Dist)
		}
	}
}
