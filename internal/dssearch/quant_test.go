package dssearch

import (
	"math"
	"math/rand"
	"testing"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// TestFracBits pins the fraction-bit computation at the heart of the
// fixed-point certificate.
func TestFracBits(t *testing.T) {
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0},
		{1, 0},
		{-3, 0},
		{1 << 30, 0},
		{0.5, 1},
		{-0.5, 1},
		{2.25, 2},
		{0.375, 3}, // 3/8
		{1.0 / 1024, 10},
		{math.Ldexp(1, -62), 62},
	}
	for _, c := range cases {
		if got := fracBits(c.v); got != c.want {
			t.Errorf("fracBits(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	// 0.1 is not 1/10 but the nearest double, m·2^-55 — exactly
	// representable, so a *single* such value passes the plain
	// certificate; it is the Σ|v|·2^55 headroom bound that rejects
	// decimal-grid channels from the plain path in practice — they ride
	// the two-float fallback instead (TestCertificatePerChannel).
	if got := fracBits(0.1); got != 55 {
		t.Errorf("fracBits(0.1) = %d, want 55", got)
	}
	// Unquantizable inputs must exceed the shift budget.
	for _, v := range []float64{math.NaN(), math.Inf(1), 5e-324, 1e-308, math.Ldexp(1, -100)} {
		if got := fracBits(v); got <= maxShift {
			t.Errorf("fracBits(%g) = %d, want > maxShift", v, got)
		}
	}
}

// quantSearcher builds a Searcher over the given objects/composite and
// returns it with its tables for certificate inspection.
func quantSearcher(t *testing.T, rects []asp.RectObject, f *agg.Composite) *Searcher {
	t.Helper()
	q := asp.Query{F: f, Target: make([]float64, f.Dims())}
	s, err := NewSearcher(rects, q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestCertificatePerChannel: channels pass and fail the certificates
// individually — dyadic reals pass the plain certificate, decimal-grid
// (base-10) channels fail it but pass the two-float fallback (so the
// whole composite is grid-exact and sorts), denormals and NaN fail
// both.
func TestCertificatePerChannel(t *testing.T) {
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "dyadic", Kind: attr.Numeric},
		attr.Attribute{Name: "decimal", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Sum, Attr: "dyadic"},
		agg.Spec{Kind: agg.Sum, Attr: "decimal"},
		agg.Spec{Kind: agg.Count},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	objs := make([]attr.Object, 40)
	rects := make([]asp.RectObject, 40)
	for i := range objs {
		x, y := rng.Float64()*10, rng.Float64()*10
		objs[i] = attr.Object{Loc: geom.Point{X: x, Y: y}, Values: []attr.Value{
			{Num: float64(rng.Intn(41)-20) * 0.25}, // quarters: certificate passes
			{Num: 0.1 * float64(1+rng.Intn(9))},    // tenths: not dyadic, fails
		}}
		rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - 1, MinY: y - 1, MaxX: x, MaxY: y}, Obj: &objs[i]}
	}
	s := quantSearcher(t, rects, f)
	tab := s.tab
	if tab.allExact {
		t.Fatal("decimal channel should fail the plain certificate")
	}
	if !tab.anyExact || !tab.satUsable() {
		t.Fatal("dyadic and count channels should pass the certificate")
	}
	// Channel layout: fS(dyadic)=0..2, fS(decimal)=3..5, fC=6.
	if !tab.chOK[0] {
		t.Error("dyadic sum channel should pass")
	}
	if !tab.chOK[3] || tab.twoOf[3] < 0 {
		t.Errorf("decimal sum channel should pass via the two-float fallback (ok=%v two=%d)",
			tab.chOK[3], tab.twoOf[3])
	}
	if tab.twoOf[0] >= 0 {
		t.Error("dyadic channel must not need the two-float fallback")
	}
	if !tab.chOK[6] {
		t.Error("count channel should pass")
	}
	if tab.chScale[0] != 4 || tab.chInv[0] != 0.25 {
		t.Errorf("dyadic scale = %g/%g, want 4/0.25", tab.chScale[0], tab.chInv[0])
	}
	if tab.eff != tab.chans+tab.twoCount || tab.twoCount < 1 {
		t.Errorf("eff=%d chans=%d twoCount=%d inconsistent", tab.eff, tab.chans, tab.twoCount)
	}
	// With every channel plain- or two-float-certified the composite is
	// grid-exact: the master sorts and the windows come on.
	if !tab.sortExact || !tab.sorted {
		t.Fatal("decimal+dyadic composite should be grid-exact and sorted")
	}
	// The split is error-free: for every contribution on a two-float
	// channel, the rewritten hi part plus its shadow lo part must equal
	// the original contribution value bit-for-bit.
	var orig []agg.Contrib
	for id := int32(0); int(id) < len(s.rects); id++ {
		orig = f.AppendContribs(s.rects[id].Obj, orig[:0])
		cbs := tab.rectContribs(id)
		shadow := func(sh int32) float64 {
			for j := range cbs {
				if cbs[j].Ch == int(sh) {
					return cbs[j].V
				}
			}
			t.Fatalf("rect %d: shadow slot %d missing", id, sh)
			return 0
		}
		oi := 0
		for k := 0; k < len(cbs); k++ {
			if cbs[k].Ch >= tab.chans {
				continue // shadow entries are checked with their primary
			}
			want := orig[oi]
			oi++
			if sh := tab.twoOf[cbs[k].Ch]; sh >= 0 {
				if got := cbs[k].V + shadow(sh); math.Float64bits(got) != math.Float64bits(want.V) {
					t.Fatalf("rect %d ch %d: hi+lo = %v, original = %v", id, cbs[k].Ch, got, want.V)
				}
			} else if math.Float64bits(cbs[k].V) != math.Float64bits(want.V) {
				t.Fatalf("rect %d ch %d: value changed: %v != %v", id, cbs[k].Ch, cbs[k].V, want.V)
			}
		}
	}
}

// TestCertificateDenormalAndHeadroom: denormal-adjacent values and
// channels whose scaled mass exceeds the 2^52 headroom fall back.
func TestCertificateDenormalAndHeadroom(t *testing.T) {
	schema, err := attr.NewSchema(attr.Attribute{Name: "v", Kind: attr.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema, agg.Spec{Kind: agg.Sum, Attr: "v"})
	if err != nil {
		t.Fatal(err)
	}
	build := func(vals []float64) *tables {
		objs := make([]attr.Object, len(vals))
		rects := make([]asp.RectObject, len(vals))
		for i, v := range vals {
			x := float64(i)
			objs[i] = attr.Object{Loc: geom.Point{X: x, Y: x}, Values: []attr.Value{{Num: v}}}
			rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - 1, MinY: x - 1, MaxX: x, MaxY: x}, Obj: &objs[i]}
		}
		return quantSearcher(t, rects, f).tab
	}
	if tab := build([]float64{0.5, 5e-324}); tab.chOK[0] {
		t.Error("denormal-bearing channel must fail both certificates")
	}
	if tab := build([]float64{0.5, math.NaN()}); tab.chOK[0] {
		t.Error("NaN-bearing channel must fail both certificates")
	}
	if tab := build([]float64{0.5, math.Inf(1)}); tab.chOK[0] {
		t.Error("Inf-bearing channel must fail both certificates")
	}
	// A tiny dyadic value forces a huge shift; a large one then blows the
	// plain scaled-sum headroom — but the two-float fallback splits the
	// spread across its hi/lo planes and serves the channel exactly.
	if tab := build([]float64{math.Ldexp(1, -50), 16}); !tab.chOK[0] || tab.twoOf[0] < 0 {
		t.Error("exponent-range overflow should ride the two-float fallback")
	}
	if tab := build([]float64{math.Ldexp(1, -50), math.Ldexp(1, -49)}); !tab.chOK[0] {
		t.Error("small dyadic values within headroom should pass")
	} else if tab.twoOf[0] >= 0 {
		t.Error("within-headroom dyadic values must pass plainly, not via two-float")
	}
	// Spreads beyond even the two-float budget — a denormal-scale tail
	// under a large head — must still fall back to the classic path.
	if tab := build([]float64{math.Ldexp(1, -1060), 16}); tab.chOK[0] {
		t.Error("beyond-two-float spread must fail both certificates")
	}
}

// quantRects builds randomized uniform-size rect objects over a
// two-numeric-attribute schema with dyadic values (rating quarters in
// [0,10], visits halves in [1,500]), mirroring the POIQuant workload.
// width/height <= 0 produce degenerate zero-extent rectangles.
func quantRects(rng *rand.Rand, n int, w, h float64) []asp.RectObject {
	objs := make([]attr.Object, n)
	rects := make([]asp.RectObject, n)
	for i := range rects {
		x := rng.Float64() * 100
		y := rng.Float64() * 100
		if rng.Intn(2) == 0 {
			x = float64(rng.Intn(20)) * 5
			y = float64(rng.Intn(20)) * 5
		}
		objs[i] = attr.Object{
			Loc: geom.Point{X: x, Y: y},
			Values: []attr.Value{
				{Num: float64(rng.Intn(41)) * 0.25},
				{Num: 1 + float64(rng.Intn(999))*0.5},
			},
		}
		rects[i] = asp.RectObject{
			Rect: geom.Rect{MinX: x - w, MinY: y - h, MaxX: x, MaxY: y},
			Obj:  &objs[i],
		}
	}
	return rects
}

// realSchemaF2 compiles the F2-shaped composite (fS + fA) against the
// two-numeric-attribute schema used by quantRects. Its fA component
// carries a min/max slot, so the fast path must exercise the
// order-statistic companion.
func realSchemaF2(t *testing.T) *agg.Composite {
	t.Helper()
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "rating", Kind: attr.Numeric},
		attr.Attribute{Name: "visits", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Sum, Attr: "visits"},
		agg.Spec{Kind: agg.Average, Attr: "rating"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// fillBothQuant runs the difference-array fill and the SAT-backed fast
// fill on the same space and returns each fill's cell totals (full and
// partial channels, partial counts) plus the min/max slot grids.
func fillBothQuant(t *testing.T, rects []asp.RectObject, f *agg.Composite, space, clip geom.Rect, ncol, nrow int, wantSorted bool) (d, s [5][]float64) {
	t.Helper()
	q := asp.Query{F: f, Target: make([]float64, f.Dims())}
	sr, err := NewSearcher(rects, q, Options{NCol: ncol, NRow: nrow})
	if err != nil {
		t.Fatal(err)
	}
	if !sr.tab.satUsable() {
		t.Fatal("composite should be fast-path usable")
	}
	if sr.tab.sorted != wantSorted {
		t.Fatalf("sorted = %v, want %v", sr.tab.sorted, wantSorted)
	}
	w := sr.workers[0]
	w.grid = newGridBuffers(ncol, nrow, f, sr.tab.eff)
	g := w.grid
	ids := sr.AppendWindowIDs(clip, nil)

	cw := space.Width() / float64(ncol)
	chh := space.Height() / float64(nrow)
	for i := 0; i <= ncol; i++ {
		g.xe[i] = space.MinX + float64(i)*cw
	}
	for j := 0; j <= nrow; j++ {
		g.ye[j] = space.MinY + float64(j)*chh
	}

	grab := func() (out [5][]float64) {
		for r := 0; r < nrow; r++ {
			for c := 0; c < ncol; c++ {
				idx := g.cellIdx(c, r)
				out[0] = append(out[0], g.diffFull[idx*g.chans:(idx+1)*g.chans]...)
				out[1] = append(out[1], g.diffPart[idx*g.chans:(idx+1)*g.chans]...)
				out[2] = append(out[2], g.diffCnt[idx])
				if g.mmSlots > 0 {
					mi := (r*ncol + c) * g.mmSlots
					out[3] = append(out[3], g.mmMin[mi:mi+g.mmSlots]...)
					out[4] = append(out[4], g.mmMax[mi:mi+g.mmSlots]...)
				}
			}
		}
		return
	}
	w.fillGridDiff(space, ids, cw, chh)
	d = grab()
	sr.tab.ensureLevels(sr.rects)
	w.fillGridFast(space, clip, ids, cw, chh, nil)
	s = grab()
	return
}

// TestFastFillBitIdenticalRealValued is the tentpole property test: on
// randomized rectangle sets over a *real-valued* composite with min/max
// slots whose values carry the fixed-point certificate, the SAT-backed
// fast fill's per-cell full/partial channel totals, partial counts, and
// min/max slots are bit-identical to the difference-array fill's —
// including degenerate zero-extent rectangles, lattice-aligned edges,
// sub-ulp sliver spaces, and ancestor-clip variants.
func TestFastFillBitIdenticalRealValued(t *testing.T) {
	f := realSchemaF2(t)
	rng := rand.New(rand.NewSource(77))
	names := [5]string{"full", "part", "cnt", "mmMin", "mmMax"}
	for trial := 0; trial < 60; trial++ {
		n := 30 + rng.Intn(400)
		w := []float64{7.5, 5, 12.3, 0}[trial%4]
		h := []float64{6, 5, 0.7, 0}[trial%4]
		rects := quantRects(rng, n, w, h)
		spaces := []geom.Rect{
			asp.Space(rects),
			{MinX: 10, MinY: 5, MaxX: 70, MaxY: 65},
			{MinX: rng.Float64() * 40, MinY: rng.Float64() * 40, MaxX: 60 + rng.Float64()*40, MaxY: 60 + rng.Float64()*40},
			{MinX: 5, MinY: 40 - 1e-13, MaxX: 95, MaxY: 40 + 1e-13},
		}
		ncol := 2 + rng.Intn(12)
		nrow := 2 + rng.Intn(12)
		for si, space := range spaces {
			clip := space
			if si%2 == 1 {
				clip.MaxX = space.MaxX - space.Width()*1e-13
				clip.MaxY = space.MaxY - space.Height()*5e-14
			}
			d, s := fillBothQuant(t, rects, f, space, clip, ncol, nrow, true)
			for k := range d {
				for i := range d[k] {
					if math.Float64bits(d[k][i]) != math.Float64bits(s[k][i]) {
						t.Fatalf("trial %d space %d: %s[%d] diff=%v fast=%v",
							trial, si, names[k], i, d[k][i], s[k][i])
					}
				}
			}
		}
	}
}

// TestFastFillMixedComposite: composites where some channels fail the
// certificate still get the fast path for the passing channels, with
// the hybrid difference-array pass covering the failing ones in
// unchanged master order — the combined grids stay bit-identical to the
// pure difference-array fill.
func TestFastFillMixedComposite(t *testing.T) {
	schema, err := attr.NewSchema(
		attr.Attribute{Name: "cat", Kind: attr.Categorical, Domain: []string{"a", "b", "c"}},
		attr.Attribute{Name: "raw", Kind: attr.Numeric},
	)
	if err != nil {
		t.Fatal(err)
	}
	// fA over reals salted with ±denormals: the avg-sum channels fail
	// both certificates (the denormal tails are unsplittable), the count
	// channel passes, and the min/max companion must still serve the fA
	// slot exactly.
	f, err := agg.New(schema,
		agg.Spec{Kind: agg.Distribution, Attr: "cat"},
		agg.Spec{Kind: agg.Average, Attr: "raw"},
	)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	names := [5]string{"full", "part", "cnt", "mmMin", "mmMax"}
	for trial := 0; trial < 40; trial++ {
		n := 30 + rng.Intn(300)
		w := []float64{7.5, 5, 0}[trial%3]
		h := []float64{6, 0.7, 0}[trial%3]
		objs := make([]attr.Object, n)
		rects := make([]asp.RectObject, n)
		for i := range rects {
			x, y := rng.Float64()*100, rng.Float64()*100
			v := rng.NormFloat64()
			switch i % 9 {
			case 0:
				v = 5e-324
			case 4:
				v = -5e-324
			}
			objs[i] = attr.Object{
				Loc: geom.Point{X: x, Y: y},
				Values: []attr.Value{
					{Cat: rng.Intn(3)},
					{Num: v},
				},
			}
			rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - w, MinY: y - h, MaxX: x, MaxY: y}, Obj: &objs[i]}
		}
		space := asp.Space(rects)
		clip := space
		if trial%2 == 1 {
			clip.MaxX -= space.Width() * 1e-13
		}
		d, s := fillBothQuant(t, rects, f, space, clip, 2+rng.Intn(10), 2+rng.Intn(10), false)
		for k := range d {
			for i := range d[k] {
				if math.Float64bits(d[k][i]) != math.Float64bits(s[k][i]) {
					t.Fatalf("trial %d: %s[%d] diff=%v fast=%v", trial, names[k], i, d[k][i], s[k][i])
				}
			}
		}
	}
}

// TestUnquantizableTakesOldPath: a composite whose every channel fails
// both certificates silently keeps the pre-SAT behavior — no sort, no
// fast path, original master order. Denormal tails on both signs defeat
// the two-float fallback on every sum channel.
func TestUnquantizableTakesOldPath(t *testing.T) {
	schema, err := attr.NewSchema(attr.Attribute{Name: "v", Kind: attr.Numeric})
	if err != nil {
		t.Fatal(err)
	}
	f, err := agg.New(schema, agg.Spec{Kind: agg.Sum, Attr: "v"})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	objs := make([]attr.Object, 60)
	rects := make([]asp.RectObject, 60)
	for i := range rects {
		x, y := rng.Float64()*10, rng.Float64()*10
		v := rng.NormFloat64()
		switch i % 10 {
		case 0:
			v = 5e-324 // denormal-adjacent
		case 5:
			v = -5e-324
		}
		objs[i] = attr.Object{Loc: geom.Point{X: x, Y: y}, Values: []attr.Value{{Num: v}}}
		rects[i] = asp.RectObject{Rect: geom.Rect{MinX: x - 1, MinY: y - 1, MaxX: x, MaxY: y}, Obj: &objs[i]}
	}
	s := quantSearcher(t, rects, f)
	if s.tab.anyExact || s.tab.allExact || s.tab.sorted || s.tab.satUsable() {
		t.Fatalf("unquantizable composite must fall back: %+v", s.tab.chOK)
	}
	for i := range rects {
		if s.rects[i].Obj != rects[i].Obj {
			t.Fatal("master order changed for an unquantizable composite")
		}
	}
}

// TestSearchEquivalenceRealValued runs whole searches over the
// real-valued min/max composite and asserts the determinism contract:
// for any fixed batch size, the fast path's answer is bit-identical to
// the difference-array oracle (DisableSAT) for every worker count; and
// across batch sizes — which legitimately change the pruning trajectory
// and may therefore resolve ties between equally-distant optima
// differently — the answer distance is identical (exactness).
func TestSearchEquivalenceRealValued(t *testing.T) {
	old := satMinIds
	satMinIds = 64 // force the fast path onto test-sized spaces
	defer func() { satMinIds = old }()

	f := realSchemaF2(t)
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 6; trial++ {
		rects := quantRects(rng, 400+rng.Intn(400), 9, 8)
		target := make([]float64, f.Dims())
		target[0] = 5000
		target[1] = 10
		q := asp.Query{F: f, Target: target}

		solve := func(disableSAT bool, workers, batch int) asp.Result {
			opt := Options{Workers: workers, BatchSize: batch, DisableSAT: disableSAT}
			s, err := NewSearcher(rects, q, opt)
			if err != nil {
				t.Fatal(err)
			}
			return s.Solve()
		}
		for _, batch := range []int{0, 1, 8} {
			want := solve(true, 1, batch) // difference-array oracle
			for _, cfg := range [][2]int{{1, 0}, {3, 0}, {2, 1}} {
				got := solve(cfg[1] == 1, cfg[0], batch)
				if got.Dist != want.Dist || got.Point != want.Point {
					t.Fatalf("trial %d batch %d cfg %v: got %v@%v, want %v@%v",
						trial, batch, cfg, got.Dist, got.Point, want.Dist, want.Point)
				}
				for i := range want.Rep {
					if math.Float64bits(got.Rep[i]) != math.Float64bits(want.Rep[i]) {
						t.Fatalf("trial %d batch %d cfg %v: rep[%d] %v != %v", trial, batch, cfg, i, got.Rep[i], want.Rep[i])
					}
				}
			}
		}
		// Across batch sizes the distance is exact and identical; the
		// answer point may differ only between equally-distant optima.
		base := solve(false, 1, 0)
		for _, batch := range []int{1, 8, 100} {
			if got := solve(false, 1, batch); got.Dist != base.Dist {
				t.Fatalf("trial %d: batch %d changed the answer distance: %v != %v",
					trial, batch, got.Dist, base.Dist)
			}
		}
	}
}
