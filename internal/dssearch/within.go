package dssearch

import (
	"errors"
	"fmt"
	"math"

	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
	"asrs/internal/kernel"
)

// ErrExtentTooSmall reports a Within extent that cannot hold a single
// a×b answer region (the anchor window is invalid).
var ErrExtentTooSmall = errors.New("dssearch: extent smaller than the a×b query region")

// ErrNoFeasibleRegion reports that exclusions left no anchor position
// inside the extent: every a×b region within the extent overlaps an
// excluded rectangle.
var ErrNoFeasibleRegion = errors.New("dssearch: no feasible region within the extent")

// AnchorWindow maps a Within extent to the rectangle of feasible ASP
// answer points. Under the top-right anchor the answer point is the
// region's bottom-left corner (RegionFor: region = [x, x+a] × [y, y+b]),
// so the region is contained in `within` exactly when the point lies in
// [MinX, MaxX−a] × [MinY, MaxY−b]. The window is invalid (and the
// extent infeasible) when the extent is smaller than a×b in either
// axis; a degenerate (zero-width or zero-height) window is valid and
// means exactly one anchor line or point fits.
func AnchorWindow(within geom.Rect, a, b float64) geom.Rect {
	return geom.Rect{MinX: within.MinX, MinY: within.MinY, MaxX: within.MaxX - a, MaxY: within.MaxY - b}
}

// withinPieces carves the anchor window into search pieces by
// subtracting the Minkowski expansion of every excluded rectangle —
// the same piece algebra SolveASRSTopK uses over the full space, so a
// windowed search and a full-space search that happen to visit the
// same geometry take bit-identical trajectories.
func withinPieces(win geom.Rect, a, b float64, exclude []geom.Rect) []geom.Rect {
	pieces := []geom.Rect{win}
	for _, e := range exclude {
		forbidden := geom.Rect{MinX: e.MinX - a, MinY: e.MinY - b, MaxX: e.MaxX, MaxY: e.MaxY}
		var next []geom.Rect
		for _, p := range pieces {
			next = append(next, subtractRect(p, forbidden)...)
		}
		pieces = next
	}
	return pieces
}

// solveWithinPieces runs the searcher over the pieces from a +Inf
// infeasible-sentinel seed and returns the best feasible candidate.
// The sentinel (not the out-of-space empty candidate Solve uses) is
// what makes Within semantics exact: the empty covering set is only an
// answer when some anchor INSIDE the window has empty coverage, and
// the sweep evaluates those in-window empty intervals like any other
// arrangement cell. An empty corpus is the degenerate case where every
// anchor has empty coverage; the searcher's kernel path early-returns
// on zero rectangles, so the canonical empty candidate is evaluated
// directly at each piece's bottom-left anchor instead.
func solveWithinPieces(s *Searcher, pieces []geom.Rect) (asp.Result, bool) {
	sentinel := asp.Result{Point: geom.Point{X: math.Inf(1), Y: math.Inf(1)}, Dist: math.Inf(1)}
	s.best = sentinel
	if len(s.rects) == 0 {
		rep := make([]float64, s.query.F.Dims())
		s.query.F.FinalizeExact(make([]float64, s.query.F.Channels()), rep)
		d := s.query.Distance(rep)
		for _, p := range pieces {
			cand := asp.Result{Point: p.BL(), Dist: d, Rep: rep}
			if kernel.Better(cand, s.best) {
				s.best = cand
			}
		}
	} else {
		for _, p := range pieces {
			s.SolveWithin(p, 0)
		}
	}
	found := s.best.Point != sentinel.Point || s.best.Rep != nil
	return s.best, found
}

// SolveASRSWithin solves the ASRS problem restricted to answer regions
// contained in the closed extent `within`, additionally excluding
// regions that overlap any rectangle in `exclude` (beyond shared
// boundary). It is the windowed front door the shard router builds on:
// the anchor window depends only on (within, a, b) — never on the
// corpus hull — so two corpora that agree on the rectangles
// intersecting the window take bit-identical search trajectories
// through it (DESIGN.md §11). Requires the default top-right anchor.
func SolveASRSWithin(ds *attr.Dataset, a, b float64, q asp.Query, within geom.Rect, exclude []geom.Rect, opt Options) (geom.Rect, asp.Result, Stats, error) {
	if opt.Anchor != asp.AnchorTR {
		return geom.Rect{}, asp.Result{}, Stats{}, fmt.Errorf("dssearch: windowed search requires the top-right-corner anchor")
	}
	if !(a > 0) || !(b > 0) {
		return geom.Rect{}, asp.Result{}, Stats{}, fmt.Errorf("dssearch: region extent must be positive, got %g x %g", a, b)
	}
	if !within.IsValid() {
		return geom.Rect{}, asp.Result{}, Stats{}, fmt.Errorf("dssearch: invalid extent %+v", within)
	}
	win := AnchorWindow(within, a, b)
	if !win.IsValid() {
		return geom.Rect{}, asp.Result{}, Stats{}, ErrExtentTooSmall
	}
	rects, err := ReduceForSearch(ds, a, b, q.F, opt)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	s, err := NewSearcherOwning(rects, q, opt)
	if err != nil {
		return geom.Rect{}, asp.Result{}, Stats{}, err
	}
	defer s.Release()
	pieces := withinPieces(win, a, b, exclude)
	if len(pieces) == 0 {
		return geom.Rect{}, asp.Result{}, s.Stats, ErrNoFeasibleRegion
	}
	best, found := solveWithinPieces(s, pieces)
	if err := s.Err(); err != nil {
		return geom.Rect{}, asp.Result{}, s.Stats, err
	}
	if !found {
		return geom.Rect{}, asp.Result{}, s.Stats, ErrNoFeasibleRegion
	}
	best.Rep = s.PointRepresentation(best.Point)
	best.Dist = s.query.Distance(best.Rep)
	s.best = best
	region := opt.Anchor.RegionFor(best.Point, a, b)
	return region, best, s.Stats, nil
}

// SolveASRSTopKWithin is the windowed greedy top-k: up to k
// non-overlapping regions inside the extent in increasing distance
// order, each round excluding the regions already chosen (plus any
// caller exclusions). Rounds stop early — without error — once no
// feasible region remains.
func SolveASRSTopKWithin(ds *attr.Dataset, a, b float64, q asp.Query, k int, exclude []geom.Rect, within geom.Rect, opt Options) ([]geom.Rect, []asp.Result, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("dssearch: top-k requires k >= 1, got %d", k)
	}
	excl := append([]geom.Rect(nil), exclude...)
	var regions []geom.Rect
	var results []asp.Result
	for i := 0; i < k; i++ {
		region, res, _, err := SolveASRSWithin(ds, a, b, q, within, excl, opt)
		if errors.Is(err, ErrNoFeasibleRegion) {
			break
		}
		if err != nil {
			return nil, nil, err
		}
		regions = append(regions, region)
		results = append(results, res)
		excl = append(excl, region)
	}
	if len(regions) == 0 {
		return nil, nil, ErrNoFeasibleRegion
	}
	return regions, results, nil
}
