package dssearch

import "asrs/internal/geom"

// split implements Function Split (paper §4.4): it partitions the
// surviving dirty cells into two groups, aiming to minimize the total area
// and overlap of the two group MBRs, and returns each group's MBR together
// with the group's smallest lower bound.
//
// Seed selection follows the paper's "two cells that are far from each
// other" heuristic with the classic linear pick (the most separated pair
// among the four axis extremes), then every remaining cell joins the group
// whose MBR grows the least (ties to group 1, matching the pseudocode's
// `cost1 > cost2 → G2, else G1`).
func split(dirty []cellInfo) (mbr1 geom.Rect, lb1 float64, mbr2 geom.Rect, lb2 float64) {
	s1, s2 := pickSeeds(dirty)

	mbr1 = dirty[s1].rect
	mbr2 = dirty[s2].rect
	lb1 = dirty[s1].lb
	lb2 = dirty[s2].lb
	a1 := mbr1.Area()
	a2 := mbr2.Area()

	for i := range dirty {
		if i == s1 || i == s2 {
			continue
		}
		g := dirty[i]
		u1 := mbr1.Union(g.rect)
		u2 := mbr2.Union(g.rect)
		cost1 := u1.Area() - a1
		cost2 := u2.Area() - a2
		if cost1 > cost2 {
			mbr2, a2 = u2, u2.Area()
			if g.lb < lb2 {
				lb2 = g.lb
			}
		} else {
			mbr1, a1 = u1, u1.Area()
			if g.lb < lb1 {
				lb1 = g.lb
			}
		}
	}
	return mbr1, lb1, mbr2, lb2
}

// pickSeeds returns the indices of the two seed cells: the most separated
// pair (by center L1 distance) among the extreme cells along each axis.
// Linear time, which keeps Split at O(n_row · n_col) as Lemma 6 assumes.
func pickSeeds(dirty []cellInfo) (int, int) {
	minX, maxX, minY, maxY := 0, 0, 0, 0
	for i := range dirty {
		c := dirty[i].rect.Center()
		if c.X < dirty[minX].rect.Center().X {
			minX = i
		}
		if c.X > dirty[maxX].rect.Center().X {
			maxX = i
		}
		if c.Y < dirty[minY].rect.Center().Y {
			minY = i
		}
		if c.Y > dirty[maxY].rect.Center().Y {
			maxY = i
		}
	}
	cands := [][2]int{{minX, maxX}, {minY, maxY}, {minX, maxY}, {minY, maxX}}
	bi, bj, bd := 0, 1, -1.0
	for _, c := range cands {
		i, j := c[0], c[1]
		if i == j {
			continue
		}
		ci, cj := dirty[i].rect.Center(), dirty[j].rect.Center()
		d := abs(ci.X-cj.X) + abs(ci.Y-cj.Y)
		if d > bd {
			bi, bj, bd = i, j, d
		}
	}
	if bi == bj { // all cells coincide; any distinct pair works
		bj = (bi + 1) % len(dirty)
	}
	return bi, bj
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
