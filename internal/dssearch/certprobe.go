package dssearch

import (
	"math"

	"asrs/internal/agg"
	"asrs/internal/attr"
)

// CertProbe summarizes the fixed-point quantization certificate a
// (dataset, composite) pair would earn: how many channels the plain
// shared-shift certificate admits to the SAT fast path, how many need
// the two-float split, and how many fall back to the per-channel
// difference-array fill. It mirrors computeCertificate's passes over
// the same per-object contributions, without building tables — the
// query planner's EXPLAIN uses it to predict the fill path. Advisory:
// the kernel re-derives the authoritative certificate per prepared
// table (windowed subsets can only tighten the sums, so a channel the
// probe admits stays admitted).
type CertProbe struct {
	// Channels is the composite's internal channel count.
	Channels int
	// Plain counts channels passing the shared-shift certificate.
	Plain int
	// TwoFloat counts channels rescued by the two-float split.
	TwoFloat int
	// Fallback counts channels neither pass admits: they fill through
	// the exact difference-array path.
	Fallback int
}

// Path names the predicted fill path.
func (p CertProbe) Path() string {
	switch {
	case p.Fallback == 0 && p.TwoFloat == 0:
		return "sat"
	case p.Fallback == 0:
		return "sat+two-float"
	case p.Plain+p.TwoFloat == 0:
		return "difference-array"
	default:
		return "sat+fallback"
	}
}

// ProbeCertificate runs the certificate passes over the dataset's
// per-object contributions for composite f.
func ProbeCertificate(ds *attr.Dataset, f *agg.Composite) CertProbe {
	c := f.Channels()
	p := CertProbe{Channels: c}
	shift := make([]int, c)
	sumAbs := make([]float64, c)
	var contribs []agg.Contrib
	var scratch []agg.Contrib
	for i := range ds.Objects {
		scratch = f.AppendContribs(&ds.Objects[i], scratch[:0])
		for _, cb := range scratch {
			if fb := fracBits(cb.V); fb > shift[cb.Ch] {
				shift[cb.Ch] = fb
			}
			sumAbs[cb.Ch] += math.Abs(cb.V)
		}
		contribs = append(contribs, scratch...)
	}

	plainOK := make([]bool, c)
	for ch := 0; ch < c; ch++ {
		ok := shift[ch] <= maxShift
		if ok {
			ok = sumAbs[ch]*math.Ldexp(1, shift[ch]) <= maxScaledSum
		}
		plainOK[ch] = ok
		if ok {
			p.Plain++
		}
	}

	// Two-float pass for the failures, mirroring computeCertificate.
	states := make([]twoState, c)
	pending := 0
	for ch := 0; ch < c; ch++ {
		if plainOK[ch] || sumAbs[ch] == 0 ||
			math.IsInf(sumAbs[ch], 0) || math.IsNaN(sumAbs[ch]) {
			continue
		}
		_, e := math.Frexp(sumAbs[ch])
		sHi := 51 - e
		if sHi > maxShift {
			sHi = maxShift
		}
		if sHi < -1000 {
			continue
		}
		states[ch] = twoState{
			scaleHi: math.Ldexp(1, sHi),
			invHi:   math.Ldexp(1, -sHi),
			ok:      true,
		}
		pending++
	}
	if pending > 0 {
		for i := range contribs {
			cb := &contribs[i]
			st := &states[cb.Ch]
			if !st.ok {
				continue
			}
			hi, lo := twoSplit(cb.V, st.scaleHi, st.invHi)
			if hi+lo != cb.V || math.IsNaN(hi) || math.IsInf(hi, 0) {
				st.ok = false
				continue
			}
			st.sumHi += math.Abs(hi)
			st.sumLo += math.Abs(lo)
			if fb := fracBits(lo); fb > st.fbLo {
				st.fbLo = fb
			}
		}
		for ch := 0; ch < c; ch++ {
			st := &states[ch]
			if !st.ok || st.scaleHi == 0 {
				continue
			}
			if st.fbLo > maxShift ||
				st.sumHi*st.scaleHi > maxScaledSum || st.sumLo*math.Ldexp(1, st.fbLo) > maxScaledSum {
				continue
			}
			p.TwoFloat++
		}
	}
	p.Fallback = c - p.Plain - p.TwoFloat
	return p
}
