package dssearch

import (
	"fmt"
	"sort"

	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/geom"
)

// Delta fold: building the pyramid for a grown dataset from an existing
// base pyramid without re-sorting the whole master (DESIGN.md §10).
//
// The expensive step of BuildPyramid is the O(n log n) master sort;
// every other pass is linear. buildTables skips both its sort and the
// post-sort re-flatten when the incoming master is already in anchor
// order — so the fold constructs the merged master directly in sorted
// order (the base pyramid's order array gives the seed objects' sorted
// anchor sequence; the delta is sorted on its own, O(d log d)) and runs
// the identical build passes over it.
//
// Bit-identity with a from-scratch BuildPyramid(combined, f) demands
// that the merged master order EQUAL the rebuild's, not merely sort
// under the same comparator: PointRepresentation re-accumulates a
// region's raw float values in master order, so even with every sum
// certificate exact, a different permutation of anchor-tied objects
// reaches the answer's representation in its last ulp. The fold
// therefore gates on the sorted order being UNIQUE — every adjacent
// anchor pair strictly increasing, which also proves the base's own
// master was sorted — plus sortExact on the merged core (when a channel
// fails both certificates the rebuild would have left the master in
// dataset order, which is not the merged order). Either gate failing
// falls back to the classic build, replicating the rebuild computation
// byte for byte; answers never depend on the fast path being taken.
// (The certificate's |v| accumulation is order-sensitive in its last
// ulp, so at the exact 2^52 boundary the merged order could certify
// where the dataset order would not; both sides of that boundary are
// exact over the sums actually taken, and the property tests pin the
// fold against the rebuild oracle across seeds.)
type DeltaStats struct {
	Folded   bool // fast path taken (vs full rebuild fallback)
	Appended int  // objects beyond the base pyramid
}

// BuildPyramidDelta builds the pyramid for combined — a dataset that
// extends the base pyramid's dataset with appended objects — reusing
// the base's master order to skip the full sort. The first base.n
// objects of combined must sit at the same locations as the base
// dataset's (values may differ; every contribution is recomputed from
// combined). Answers through the returned pyramid are bit-identical to
// BuildPyramid(combined, f): the merged fast path is gated on full
// exact certification and otherwise falls back to the classic build.
func BuildPyramidDelta(base *Pyramid, combined *attr.Dataset) (*Pyramid, *DeltaStats, error) {
	if base == nil {
		return nil, nil, fmt.Errorf("dssearch: delta build requires a base pyramid")
	}
	if combined == nil {
		return nil, nil, fmt.Errorf("dssearch: delta build requires a dataset")
	}
	if err := combined.Validate(); err != nil {
		return nil, nil, err
	}
	n := len(combined.Objects)
	if n < base.n {
		return nil, nil, fmt.Errorf("dssearch: delta build: combined dataset has %d objects, base pyramid covers %d", n, base.n)
	}
	if combined.Schema != base.ds.Schema {
		return nil, nil, fmt.Errorf("dssearch: delta build: combined dataset has a different schema")
	}
	for i := 0; i < base.n; i++ {
		if combined.Objects[i].Loc != base.ds.Objects[i].Loc {
			return nil, nil, fmt.Errorf("dssearch: delta build: object %d moved (%v != %v); combined must extend the base dataset",
				i, combined.Objects[i].Loc, base.ds.Objects[i].Loc)
		}
	}
	stats := &DeltaStats{Appended: n - base.n}

	// Sort the appended tail by anchor, ties by dataset index — a total
	// order, so the fold is deterministic regardless of callers.
	deltaIds := make([]int32, 0, n-base.n)
	for i := base.n; i < n; i++ {
		deltaIds = append(deltaIds, int32(i))
	}
	sort.Slice(deltaIds, func(a, b int) bool {
		oa, ob := &combined.Objects[deltaIds[a]], &combined.Objects[deltaIds[b]]
		if oa.Loc.X != ob.Loc.X {
			return oa.Loc.X < ob.Loc.X
		}
		if oa.Loc.Y != ob.Loc.Y {
			return oa.Loc.Y < ob.Loc.Y
		}
		return deltaIds[a] < deltaIds[b]
	})

	// Merge the base's sorted anchor sequence with the sorted delta into
	// the synthetic master (the same degenerate location-anchored rects
	// as BuildPyramid), seed-first on full anchor ties. If the base was
	// itself never sorted (its channels failed certification), the merge
	// output is not sorted either — buildTables detects that and sorts,
	// so nothing is ever wrong, only slower.
	synth := make([]asp.RectObject, 0, n)
	rect := func(idx int32) asp.RectObject {
		o := &combined.Objects[idx]
		return asp.RectObject{
			Rect: geom.Rect{MinX: o.Loc.X, MinY: o.Loc.Y, MaxX: o.Loc.X, MaxY: o.Loc.Y},
			Obj:  o,
		}
	}
	bi, di := 0, 0
	for bi < base.n && di < len(deltaIds) {
		sb := &base.ds.Objects[base.order[bi]]
		sd := &combined.Objects[deltaIds[di]]
		if sb.Loc.X < sd.Loc.X || (sb.Loc.X == sd.Loc.X && sb.Loc.Y <= sd.Loc.Y) {
			synth = append(synth, rect(base.order[bi]))
			bi++
		} else {
			synth = append(synth, rect(deltaIds[di]))
			di++
		}
	}
	for ; bi < base.n; bi++ {
		synth = append(synth, rect(base.order[bi]))
	}
	for ; di < len(deltaIds); di++ {
		synth = append(synth, rect(deltaIds[di]))
	}

	// Unique-order gate: any anchor tie (or an unsorted base) means the
	// rebuild's unstable sort could place the tied objects differently,
	// and that permutation reaches Rep through float re-accumulation.
	for i := 1; i < n; i++ {
		a, b := &synth[i-1].Rect, &synth[i].Rect
		if a.MinX > b.MinX || (a.MinX == b.MinX && a.MinY >= b.MinY) {
			return rebuildFallback(base, combined, stats)
		}
	}

	core := &tables{}
	master := buildTables(core, synth, base.f, true)
	if !core.sortExact {
		return rebuildFallback(base, combined, stats)
	}
	stats.Folded = true
	return finishPyramid(combined, base.f, core, master), stats, nil
}

// rebuildFallback is the gate-refused path: the classic build over the
// combined dataset, byte-for-byte the rebuild computation.
func rebuildFallback(base *Pyramid, combined *attr.Dataset, stats *DeltaStats) (*Pyramid, *DeltaStats, error) {
	p, err := BuildPyramid(combined, base.f)
	return p, stats, err
}
