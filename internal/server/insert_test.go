package server

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"asrs"
)

// insertFixture builds a server over a small two-attribute corpus
// (categorical + numeric, so both wire value forms are exercised) and
// returns it with its engine and test listener.
func insertFixture(t *testing.T, cfg Config) (*Server, *httptest.Server, *asrs.Engine) {
	t.Helper()
	schema := asrs.MustSchema(
		asrs.Attribute{Name: "category", Kind: asrs.Categorical,
			Domain: []string{"Apartment", "Supermarket", "Restaurant"}},
		asrs.Attribute{Name: "price", Kind: asrs.Numeric},
	)
	obj := func(x, y float64, cat int, price float64) asrs.Object {
		return asrs.Object{Loc: asrs.Point{X: x, Y: y},
			Values: []asrs.Value{{Cat: cat}, {Num: price}}}
	}
	ds := &asrs.Dataset{Schema: schema, Objects: []asrs.Object{
		obj(1.0, 1.0, 0, 2.0), obj(1.6, 1.4, 0, 1.5), obj(1.2, 1.8, 1, 0),
		obj(4.8, 1.2, 2, 0), obj(4.4, 1.6, 0, 3.0), obj(7.1, 2.3, 1, 0),
	}}
	f, err := asrs.NewComposite(schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Count},
	)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	cfg.Composites = map[string]*asrs.Composite{"poi": f}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts, eng
}

func postInsert(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/insert", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestInsertEndpointEndToEnd: wire objects land in the engine with their
// categorical labels resolved and numerics bit-preserved, acks count
// both the request and the running total, and the inserted objects are
// visible to queries issued after the ack.
func TestInsertEndpointEndToEnd(t *testing.T) {
	_, ts, eng := insertFixture(t, Config{})
	resp, body := postInsert(t, ts.URL, Insert{Objects: []InsertObject{
		{X: 2.0, Y: 2.5, Values: map[string]any{"category": "Restaurant", "price": 0.0}},
		{X: 2.2, Y: 2.7, Values: map[string]any{"category": "Apartment", "price": 1.75}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var ack InsertResponse
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Ingested != 2 || ack.TotalIngested != 2 {
		t.Fatalf("ack %+v, want 2/2", ack)
	}
	got := eng.IngestedObjects()
	if len(got) != 2 {
		t.Fatalf("engine staged %d objects, want 2", len(got))
	}
	if got[0].Values[0].Cat != 2 || got[1].Values[0].Cat != 0 {
		t.Fatalf("categorical labels resolved to %d/%d, want 2/0", got[0].Values[0].Cat, got[1].Values[0].Cat)
	}
	if math.Float64bits(got[1].Values[1].Num) != math.Float64bits(1.75) {
		t.Fatalf("numeric value %v, want 1.75", got[1].Values[1].Num)
	}

	// Second insert advances the running total.
	resp, body = postInsert(t, ts.URL, Insert{Objects: []InsertObject{
		{X: 3.0, Y: 3.0, Values: map[string]any{"category": "Supermarket", "price": 0.0}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second insert: status = %d, body %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Ingested != 1 || ack.TotalIngested != 3 {
		t.Fatalf("second ack %+v, want 1/3", ack)
	}

	// The inserted objects answer queries: a query-by-example over the
	// region the inserts landed in must see them (the epoch advanced).
	q := Query{Composite: "poi", A: 1.0, B: 1.0,
		Region: &Rect{MinX: 1.8, MinY: 2.3, MaxX: 2.4, MaxY: 2.9}}
	raw, _ := json.Marshal(q)
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("post-insert query status = %d", qresp.StatusCode)
	}
	if st := eng.Stats(); st.Ingested != 3 {
		t.Fatalf("Stats.Ingested = %d, want 3", st.Ingested)
	}
}

// TestInsertEndpointValidation: malformed bodies and schema-violating
// objects are refused with 400/bad_request and stage nothing.
func TestInsertEndpointValidation(t *testing.T) {
	_, ts, eng := insertFixture(t, Config{})
	cases := []struct {
		name string
		body any
	}{
		{"empty", Insert{}},
		{"missing_attr", Insert{Objects: []InsertObject{
			{X: 1, Y: 1, Values: map[string]any{"category": "Apartment"}}}}},
		{"unknown_attr", Insert{Objects: []InsertObject{
			{X: 1, Y: 1, Values: map[string]any{"category": "Apartment", "rating": 5.0}}}}},
		{"bad_label", Insert{Objects: []InsertObject{
			{X: 1, Y: 1, Values: map[string]any{"category": "Castle", "price": 1.0}}}}},
		{"number_for_categorical", Insert{Objects: []InsertObject{
			{X: 1, Y: 1, Values: map[string]any{"category": 2.0, "price": 1.0}}}}},
		{"string_for_numeric", Insert{Objects: []InsertObject{
			{X: 1, Y: 1, Values: map[string]any{"category": "Apartment", "price": "cheap"}}}}},
	}
	for _, c := range cases {
		resp, body := postInsert(t, ts.URL, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, body %s", c.name, resp.StatusCode, body)
		}
		var wr Response
		if err := json.Unmarshal(body, &wr); err != nil {
			t.Fatal(err)
		}
		if wr.Code != CodeBadRequest || wr.Retryable {
			t.Fatalf("%s: code %q retryable %v, want bad_request/false", c.name, wr.Code, wr.Retryable)
		}
	}
	if got := len(eng.IngestedObjects()); got != 0 {
		t.Fatalf("refused inserts staged %d objects", got)
	}
}

// TestInsertShedsUnderBrownout: a server whose degradation ladder has
// stepped down at all sheds inserts with 429 + Retry-After while the
// query path keeps serving — inserts are the first load dropped.
func TestInsertShedsUnderBrownout(t *testing.T) {
	s, ts, eng := insertFixture(t, Config{})
	for i := 0; i < ladderStepSheds; i++ {
		s.ladder.note(true)
	}
	if s.ladder.Level() == 0 {
		t.Fatal("ladder did not step down")
	}
	resp, body := postInsert(t, ts.URL, Insert{Objects: []InsertObject{
		{X: 2, Y: 2, Values: map[string]any{"category": "Apartment", "price": 1.0}},
	}})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("brownout insert: status = %d, body %s", resp.StatusCode, body)
	}
	var wr Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Code != CodeOverloaded || !wr.Retryable {
		t.Fatalf("brownout insert: code %q retryable %v, want overloaded/true", wr.Code, wr.Retryable)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("brownout insert: Retry-After = %q, want >= 1", ra)
	}
	if got := len(eng.IngestedObjects()); got != 0 {
		t.Fatalf("shed insert staged %d objects", got)
	}

	// Queries are NOT shed by brownout alone (only by a full queue).
	q := Query{Composite: "poi", A: 1, B: 1, Target: []float64{1, 0, 0, 3}}
	raw, _ := json.Marshal(q)
	qresp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("brownout query: status = %d", qresp.StatusCode)
	}
}

// TestInsertRefusedWhileDraining: a draining server answers inserts
// with 503/draining before touching the engine.
func TestInsertRefusedWhileDraining(t *testing.T) {
	s, ts, eng := insertFixture(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body := postInsert(t, ts.URL, Insert{Objects: []InsertObject{
		{X: 2, Y: 2, Values: map[string]any{"category": "Apartment", "price": 1.0}},
	}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining insert: status = %d, body %s", resp.StatusCode, body)
	}
	var wr Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Code != CodeDraining || !wr.Retryable {
		t.Fatalf("draining insert: code %q retryable %v, want draining/true", wr.Code, wr.Retryable)
	}
	if got := len(eng.IngestedObjects()); got != 0 {
		t.Fatalf("draining insert staged %d objects", got)
	}
}
