package server

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Degradation ladder: how the server behaves between "healthy" and
// "shedding everything". Two mechanisms compose (DESIGN.md §9):
//
//   - Retry-After on every 429 is derived from the observed batch
//     service time (EWMA) with client-spreading jitter, so shed
//     clients come back roughly when the work they were shed behind
//     has cleared — not in lockstep, and never "0".
//   - Brownout: sustained shedding steps the coalescing window and
//     max batch DOWN a level at a time (halving both), trading
//     amortization for faster individual turnaround and finer-grained
//     admission; sustained calm steps back up. The ladder is advisory
//     — answers stay bit-identical, only batching geometry changes.

// ewmaAlpha weights the newest observation; ~5 batches of memory.
const ewmaAlpha = 0.2

// serviceEWMA is a lock-free exponentially weighted moving average of
// batch service times, stored as float64 bits in an atomic word.
type serviceEWMA struct {
	bits atomic.Uint64
}

// Observe folds one batch service time into the average.
func (e *serviceEWMA) Observe(d time.Duration) {
	if d < 0 {
		return
	}
	v := float64(d)
	for {
		old := e.bits.Load()
		cur := math.Float64frombits(old)
		next := v
		if old != 0 {
			next = cur + ewmaAlpha*(v-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current average (0 before any observation).
func (e *serviceEWMA) Value() time.Duration {
	return time.Duration(math.Float64frombits(e.bits.Load()))
}

// retryAfterSeconds derives the Retry-After header value from the
// service-time EWMA and a jitter fraction in [0, 1): the jittered
// estimate of when the currently queued work clears, rounded UP to
// whole seconds and floored at 1 — the header must never be 0, which
// clients read as "retry immediately" and which turns shedding into a
// synchronized retry storm. Pure function; the unit test pins it.
func retryAfterSeconds(ewma time.Duration, jitter float64) int {
	if ewma <= 0 {
		return 1
	}
	jittered := float64(ewma) * (1 + 0.5*jitter)
	secs := int(math.Ceil(jittered / float64(time.Second)))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Ladder tuning.
const (
	// ladderBucket is the shed-accounting quantum.
	ladderBucket = time.Second
	// ladderStepSheds sheds within one bucket enter/deepen brownout.
	ladderStepSheds = 8
	// ladderCalmBuckets consecutive shed-free buckets step back up.
	ladderCalmBuckets = 2
	// ladderMaxLevel bounds the descent: window and batch are halved
	// per level, so level 3 is window/8, batch/8.
	ladderMaxLevel = 3
)

// ladder is the brownout state machine. All transitions happen inside
// note(), driven by admission-path events — no background goroutine,
// so an idle server holds its level until traffic returns (documented:
// recovery requires observed calm, not elapsed wall clock).
type ladder struct {
	baseWindow   time.Duration
	baseMaxBatch int
	// apply installs the level's effective limits (Coalescer.SetLimits).
	apply func(window time.Duration, maxBatch int)
	// now is the clock; replaceable in tests.
	now func() time.Time

	mu        sync.Mutex
	level     int
	bucket    time.Time // start of the current accounting bucket
	sheds     int       // sheds observed in the current bucket
	stepped   bool      // already stepped down in this bucket
	calm      int       // consecutive completed shed-free buckets
	entries   int64     // transitions 0 -> 1 (brownout entries)
	downSteps int64     // total step-downs
}

func newLadder(window time.Duration, maxBatch int, apply func(time.Duration, int)) *ladder {
	return &ladder{
		baseWindow:   window,
		baseMaxBatch: maxBatch,
		apply:        apply,
		now:          time.Now,
	}
}

// note records one admission-path event (shed or served) and runs any
// due transitions. Called on every request; the critical section is a
// few comparisons.
func (l *ladder) note(shed bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	if l.bucket.IsZero() {
		l.bucket = now
	}
	// Close out elapsed buckets. A long idle gap counts as calm: each
	// fully elapsed empty bucket contributes to recovery.
	for now.Sub(l.bucket) >= ladderBucket {
		if l.sheds == 0 {
			l.calm++
			if l.calm >= ladderCalmBuckets && l.level > 0 {
				l.setLevelLocked(l.level - 1)
				l.calm = 0
			}
		} else {
			l.calm = 0
		}
		l.sheds = 0
		l.stepped = false
		l.bucket = l.bucket.Add(ladderBucket)
		if gap := now.Sub(l.bucket); gap > 10*ladderBucket {
			// Far behind (idle minutes): credit the elapsed calm at the
			// loop's cap and jump to the present.
			l.bucket = now
		}
	}
	if shed {
		l.sheds++
		if l.sheds >= ladderStepSheds && !l.stepped && l.level < ladderMaxLevel {
			l.setLevelLocked(l.level + 1)
			l.stepped = true
			l.calm = 0
		}
	}
}

// setLevelLocked moves to a level and installs its limits.
func (l *ladder) setLevelLocked(level int) {
	if level > l.level {
		l.downSteps++
		if l.level == 0 {
			l.entries++
		}
	}
	l.level = level
	window := l.baseWindow >> level
	maxBatch := l.baseMaxBatch >> level
	if maxBatch < 1 {
		maxBatch = 1
	}
	if l.apply != nil {
		l.apply(window, maxBatch)
	}
}

// Level reports the current brownout level (0 = healthy).
func (l *ladder) Level() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.level
}

// Current reports the effective coalescing limits at this level.
func (l *ladder) Current() (time.Duration, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	window := l.baseWindow >> l.level
	maxBatch := l.baseMaxBatch >> l.level
	if maxBatch < 1 {
		maxBatch = 1
	}
	return window, maxBatch
}

// Entries reports how many times brownout was entered from healthy.
func (l *ladder) Entries() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries
}
