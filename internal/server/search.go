package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"asrs/internal/faultinject"
	"asrs/internal/query"
	"asrs/internal/shard"
	"asrs/internal/wire"
)

// handleSearch serves POST /v1/search: the query-language front door.
// The body is a wire.Search ({"q": "find …"}). EXPLAIN queries answer
// with one JSON document (the plan report); executable queries stream
// NDJSON — one wire.SearchRow per answer as each greedy round finishes,
// then a terminal done row. The first row is on the wire before later
// rounds have run: time-to-first-result is one round, not k.
//
// Search rounds bypass the coalescer (each round is its own engine or
// router call under the stream's context) but register with the drain
// like batch work, so Shutdown waits for an in-flight stream before
// closing engines. Admission holds one token for the stream's lifetime.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.nReceived.Add(1)
	if !s.admit(w, 1) {
		return
	}
	defer s.release(1)
	var sq wire.Search
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&sq); err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "invalid request body: %v", err)
		return
	}
	pl, err := s.planner.ParseAndPlan(sq.Q)
	if err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "%v", err)
		return
	}
	policy, err := s.searchPolicy(sq.Partial)
	if err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "%v", err)
		return
	}

	if pl.Explain {
		writeJSON(w, http.StatusOK, pl.Report(s.currentDataset(), s.router != nil))
		return
	}

	// Deadline resolution matches buildRequest: the query's own timeout
	// clause, clamped by the operator's ceiling, under the serving
	// context so drain cancellation reaches every round.
	if sq.TimeoutMS < 0 || pl.TimeoutMS < 0 {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "timeout_ms must be non-negative")
		return
	}
	timeout := s.cfg.Timeout
	if pl.TimeoutMS > 0 {
		timeout = time.Duration(pl.TimeoutMS) * time.Millisecond
	}
	if sq.TimeoutMS > 0 {
		timeout = time.Duration(sq.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(s.base, timeout)
	defer cancel()
	stopWatch := context.AfterFunc(r.Context(), cancel)
	defer stopWatch()

	// Drain registration, like the batch and routed paths.
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		s.writeDraining(w)
		return
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()

	var b query.Binding
	if s.router != nil {
		b = query.RouterBinding{R: s.router, Policy: policy}
	} else {
		b = query.EngineBinding{E: s.eng}
	}
	st, err := query.Exec(ctx, pl, b)
	if err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "%v", err)
		return
	}

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for {
		row, ok := st.Next()
		if !ok {
			break
		}
		enc.Encode(wire.SearchRow{
			Rank: row.Rank,
			Result: &wire.Result{
				Region: wire.RectWire(row.Region),
				Point:  wire.Point{X: row.Result.Point.X, Y: row.Result.Point.Y},
				Dist:   row.Result.Dist,
				Rep:    row.Result.Rep,
			},
		})
		if flusher != nil {
			flusher.Flush()
		}
		// Chaos hook: a per-round stall makes streamed laziness visible
		// to tests — early rows arrive while later rounds sleep here.
		if f, ok := faultinject.Check("server.search.round"); ok && f.Action == faultinject.ActSleep {
			f.Sleep()
		}
	}
	if err := st.Err(); err != nil {
		// Headers are gone; the error travels as the terminal row.
		status, code, retryable := classify(err)
		if status == http.StatusGatewayTimeout {
			s.nTimeouts.Add(1)
		}
		enc.Encode(wire.SearchRow{Error: err.Error(), Code: code, Retryable: retryable})
		if flusher != nil {
			flusher.Flush()
		}
		return
	}
	s.ewma.Observe(time.Since(start))
	enc.Encode(wire.SearchRow{
		Done:      true,
		Count:     st.Emitted(),
		Coverage:  st.Coverage(),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
	if flusher != nil {
		flusher.Flush()
	}
}

// searchPolicy resolves the effective partial policy for a search
// stream: the request's (router mode only, matching /v1/query), else
// the server default, else strict.
func (s *Server) searchPolicy(p string) (shard.PartialPolicy, error) {
	switch p {
	case "":
	case string(shard.Strict), string(shard.BestEffort):
		if s.router == nil {
			return "", fmt.Errorf("partial is only valid on a sharded server")
		}
		return shard.PartialPolicy(p), nil
	default:
		return "", fmt.Errorf("unknown partial policy %q (want strict or best_effort)", p)
	}
	if s.cfg.DefaultPartial != "" {
		return shard.PartialPolicy(s.cfg.DefaultPartial), nil
	}
	return shard.Strict, nil
}
