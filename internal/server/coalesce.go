package server

import (
	"context"
	"fmt"
	"log"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"asrs"
	"asrs/internal/faultinject"
)

// Coalescer is the bounded-latency window collector that turns
// concurrent single queries into engine batch supersteps. The first
// request to arrive opens a window; requests landing inside it pile
// into one pending batch, and when the window elapses — or the batch
// reaches MaxBatch first — the whole batch drains into a single
// Engine.QueryBatchCtx call. The engine's grouping pass then dedups
// byte-identical requests and shares one prepared query shape per
// (composite, a, b) group across what were independent clients
// (DESIGN.md §6), which is where the serving throughput win comes from.
//
// Grouping is arrival-time-driven and therefore nondeterministic — two
// runs of the same traffic can batch differently — but answers are not:
// the engine promises per-request answers bit-identical to individual
// Query calls for any batch composition (the coalescer property test
// pins this).
//
// A window of zero (or MaxBatch ≤ 1) disables coalescing: every request
// dispatches alone, which is the ablation baseline the serve benchmark
// compares against.
type Coalescer struct {
	eng *asrs.Engine
	// base is the coalescer's lifetime context: batch searches run under
	// it (per-request deadlines ride QueryRequest.Ctx), so cancelling it
	// aborts all in-flight engine work at the next superstep boundary.
	base context.Context
	// window (nanoseconds) and maxBatch are atomics: the degradation
	// ladder (degrade.go) steps them down under sustained shedding and
	// back up when calm returns, concurrently with Submits.
	window   atomic.Int64
	maxBatch atomic.Int64
	// onService, when set, observes each dispatch's engine service time
	// (the Retry-After EWMA feed). Set before serving; not synchronized.
	onService func(time.Duration)

	mu      sync.Mutex
	pending []*waiter
	gen     uint64 // increments whenever pending is taken; stales old timers
	closed  bool

	wg sync.WaitGroup // in-flight dispatch goroutines

	// Counters (atomic; see Stats).
	nBatches   atomic.Int64
	nRequests  atomic.Int64
	nMaxFlush  atomic.Int64 // batches flushed by hitting MaxBatch
	widest     atomic.Int64 // largest batch dispatched
	nSingles   atomic.Int64 // uncoalesced dispatches (window=0 path)
	nRejected  atomic.Int64 // submits refused because the coalescer closed
	nDelivered atomic.Int64 // responses handed to waiters
}

// checkDispatchFaults probes the dispatch failpoints: a slow dispatch
// stalls the whole batch (deadline-pressure simulation), a panicking
// one exercises recoverDeliver's conversion to per-waiter errors.
func (c *Coalescer) checkDispatchFaults() {
	if f, ok := faultinject.Check("server.dispatch.slow"); ok && f.Action == faultinject.ActSleep {
		f.Sleep()
	}
	if f, ok := faultinject.Check("server.dispatch.panic"); ok && f.Action == faultinject.ActPanic {
		panic(f.PanicValue())
	}
}

// observeService feeds one dispatch's engine service time to the
// server's EWMA (nil-safe: benches build bare coalescers).
func (c *Coalescer) observeService(d time.Duration) {
	if c.onService != nil {
		c.onService(d)
	}
}

// waiter carries one request and its delivery channel (buffered, so a
// dispatch never blocks on a client that stopped listening).
type waiter struct {
	req  asrs.QueryRequest
	done chan asrs.QueryResponse
}

// NewCoalescer builds a coalescer over the engine. base bounds every
// batch search (typically the server's drain context); window and
// maxBatch bound the added latency and the superstep width.
func NewCoalescer(base context.Context, eng *asrs.Engine, window time.Duration, maxBatch int) *Coalescer {
	if base == nil {
		base = context.Background()
	}
	if maxBatch <= 0 {
		maxBatch = DefaultMaxBatch
	}
	c := &Coalescer{eng: eng, base: base}
	c.window.Store(int64(window))
	c.maxBatch.Store(int64(maxBatch))
	return c
}

// SetLimits installs new coalescing limits; in-flight windows keep the
// geometry they started with, later Submits see the new one.
func (c *Coalescer) SetLimits(window time.Duration, maxBatch int) {
	if maxBatch < 1 {
		maxBatch = 1
	}
	c.window.Store(int64(window))
	c.maxBatch.Store(int64(maxBatch))
}

// Limits reports the current coalescing limits.
func (c *Coalescer) Limits() (time.Duration, int) {
	return time.Duration(c.window.Load()), int(c.maxBatch.Load())
}

// Submit enqueues one request and returns the channel its response will
// arrive on (buffered; a response is always delivered unless the
// coalescer was already closed, in which case the channel is closed).
// The request's own Ctx still bounds its search individually.
func (c *Coalescer) Submit(req asrs.QueryRequest) <-chan asrs.QueryResponse {
	w := &waiter{req: req, done: make(chan asrs.QueryResponse, 1)}
	window, maxBatch := c.Limits()
	if window <= 0 || maxBatch <= 1 {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			c.nRejected.Add(1)
			close(w.done)
			return w.done
		}
		c.wg.Add(1)
		c.mu.Unlock()
		c.nSingles.Add(1)
		go func() {
			defer c.wg.Done()
			defer c.recoverDeliver([]*waiter{w})
			c.checkDispatchFaults()
			started := time.Now()
			resp := c.eng.QueryCtx(c.base, w.req)
			c.observeService(time.Since(started))
			// Counter before delivery, matching dispatch: a stats reader
			// triggered by the response must see it counted.
			c.nDelivered.Add(1)
			w.done <- resp
		}()
		return w.done
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.nRejected.Add(1)
		close(w.done)
		return w.done
	}
	c.pending = append(c.pending, w)
	if len(c.pending) >= maxBatch {
		batch := c.takeLocked()
		c.mu.Unlock()
		c.nMaxFlush.Add(1)
		c.dispatch(batch)
		return w.done
	}
	if len(c.pending) == 1 {
		// First request of a fresh window: arm its flush timer. The
		// generation check makes the timer a no-op if the batch already
		// drained through the MaxBatch path (or a later window owns
		// pending by the time the timer fires).
		gen := c.gen
		time.AfterFunc(window, func() { c.flushGen(gen) })
	}
	c.mu.Unlock()
	return w.done
}

// takeLocked detaches the pending batch (caller holds mu) and bumps the
// generation so stale timers recognize their window is gone. The
// dispatch goroutine is registered before the lock is released so a
// concurrent Close cannot miss it.
func (c *Coalescer) takeLocked() []*waiter {
	batch := c.pending
	c.pending = nil
	c.gen++
	c.wg.Add(1)
	return batch
}

// flushGen drains the pending batch if it still belongs to generation
// gen (the window timer's path).
func (c *Coalescer) flushGen(gen uint64) {
	c.mu.Lock()
	if c.gen != gen || len(c.pending) == 0 {
		c.mu.Unlock()
		return
	}
	batch := c.takeLocked()
	c.mu.Unlock()
	c.dispatch(batch)
}

// dispatch answers one detached batch through a single engine batch
// call and delivers each response to its waiter. The caller has already
// registered the dispatch with wg (takeLocked / the window=0 path).
// recoverDeliver converts a panic on a dispatch goroutine into error
// responses for the batch's waiters. Engine work runs off the handler
// goroutines here, so recoverMiddleware cannot catch it — without this,
// one panicking query would kill the whole daemon instead of failing
// one batch with 500s. Sends are non-blocking: waiters already served
// before the panic keep their answers (their buffered channel is full).
func (c *Coalescer) recoverDeliver(batch []*waiter) {
	v := recover()
	if v == nil {
		return
	}
	log.Printf("server: panic in coalescer dispatch: %v\n%s", v, debug.Stack())
	err := fmt.Errorf("%w: %v", errDispatchPanic, v)
	for _, w := range batch {
		select {
		case w.done <- asrs.QueryResponse{Err: err}:
			c.nDelivered.Add(1)
		default:
		}
	}
}

func (c *Coalescer) dispatch(batch []*waiter) {
	go func() {
		defer c.wg.Done()
		defer c.recoverDeliver(batch)
		c.checkDispatchFaults()
		reqs := make([]asrs.QueryRequest, len(batch))
		for i, w := range batch {
			reqs[i] = w.req
		}
		started := time.Now()
		resps := c.eng.QueryBatchCtx(c.base, reqs)
		c.observeService(time.Since(started))
		// Counters before delivery: a stats reader triggered by the last
		// response (the bench does exactly that) must see this batch.
		c.nBatches.Add(1)
		c.nRequests.Add(int64(len(batch)))
		c.nDelivered.Add(int64(len(batch)))
		for {
			cur := c.widest.Load()
			if int64(len(batch)) <= cur || c.widest.CompareAndSwap(cur, int64(len(batch))) {
				break
			}
		}
		for i, w := range batch {
			w.done <- resps[i]
		}
	}()
}

// Close drains the coalescer: the pending window is flushed immediately
// (waiting requests get answers, not errors), new submits are refused,
// and Close blocks until every in-flight dispatch has delivered — the
// graceful half of shutdown. Cancelling the base context instead (or
// additionally, after a drain deadline) aborts in-flight searches at
// the next kernel superstep boundary.
func (c *Coalescer) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		c.wg.Wait()
		return
	}
	c.closed = true
	var batch []*waiter
	if len(c.pending) > 0 {
		batch = c.takeLocked()
	}
	c.mu.Unlock()
	if batch != nil {
		c.dispatch(batch)
	}
	c.wg.Wait()
}

// CoalescerStats is a point-in-time snapshot of the coalescer counters.
type CoalescerStats struct {
	// Batches and BatchedRequests count coalesced dispatches; their
	// ratio is the realized average batch width.
	Batches         int64 `json:"batches"`
	BatchedRequests int64 `json:"batched_requests"`
	// FullFlushes counts batches flushed by reaching MaxBatch before the
	// window elapsed (the overload-side flush path).
	FullFlushes int64 `json:"full_flushes"`
	// WidestBatch is the largest batch dispatched so far.
	WidestBatch int64 `json:"widest_batch"`
	// Singles counts uncoalesced dispatches (window=0 configuration).
	Singles int64 `json:"singles"`
	// Rejected counts submits refused after Close.
	Rejected int64 `json:"rejected"`
	// Delivered counts responses handed to waiters.
	Delivered int64 `json:"delivered"`
}

// Stats snapshots the coalescer counters.
func (c *Coalescer) Stats() CoalescerStats {
	return CoalescerStats{
		Batches:         c.nBatches.Load(),
		BatchedRequests: c.nRequests.Load(),
		FullFlushes:     c.nMaxFlush.Load(),
		WidestBatch:     c.widest.Load(),
		Singles:         c.nSingles.Load(),
		Rejected:        c.nRejected.Load(),
		Delivered:       c.nDelivered.Load(),
	}
}
