package server_test

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/harness"
	"asrs/internal/server"
)

// testCorpus builds the shared serving fixture once: a Singapore-shaped
// corpus, the serving composite, and a request mix of overlapping
// query-by-example extents (harness.ServeQueries — the same generator
// the acceptance bench uses, so tests and bench exercise one workload
// shape) expanded with exact repeats (the dedup-heavy shape real
// serving traffic has).
var testCorpus struct {
	once sync.Once
	ds   *asrs.Dataset
	f    *asrs.Composite
	reqs []asrs.QueryRequest
	err  error
}

func corpus(t *testing.T) (*asrs.Dataset, *asrs.Composite, []asrs.QueryRequest) {
	t.Helper()
	testCorpus.once.Do(func() {
		ds := dataset.SingaporeScaled(8000, 11)
		f, err := asrs.NewComposite(ds.Schema,
			asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
			asrs.AggSpec{Kind: asrs.Count},
		)
		if err != nil {
			testCorpus.err = err
			return
		}
		_, distinct, err := harness.ServeQueries(ds, f, "poi", 16, 11)
		if err != nil {
			testCorpus.err = err
			return
		}
		// A third of the mix repeats earlier requests (popular queries),
		// exercising the dedup pass.
		rng := rand.New(rand.NewSource(11))
		reqs := make([]asrs.QueryRequest, 24)
		next := 0
		for i := range reqs {
			if i > 0 && i%3 == 2 {
				reqs[i] = reqs[rng.Intn(i)]
				continue
			}
			reqs[i] = distinct[next%len(distinct)]
			next++
		}
		testCorpus.ds, testCorpus.f, testCorpus.reqs = ds, f, reqs
	})
	if testCorpus.err != nil {
		t.Fatal(testCorpus.err)
	}
	return testCorpus.ds, testCorpus.f, testCorpus.reqs
}

// TestCoalescerBitIdentical is the coalescer property test: N
// concurrent clients submitting through the window collector must get
// distances bit-identical to N sequential Engine.Query calls — for any
// coalescing window, batch cap and worker count, including window=0
// (no coalescing at all).
func TestCoalescerBitIdentical(t *testing.T) {
	ds, _, reqs := corpus(t)

	// Sequential reference on a pristine engine.
	refEng, err := asrs.NewEngine(ds, asrs.EngineOptions{IndexGranularity: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, len(reqs))
	for i, req := range reqs {
		resp := refEng.Query(req)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		want[i] = resp.Results[0].Dist
	}

	cases := []struct {
		window   time.Duration
		maxBatch int
		workers  int
	}{
		{0, 0, 1},                      // no coalescing
		{200 * time.Microsecond, 2, 1}, // tiny windows, tiny batches
		{2 * time.Millisecond, 8, 1},
		{5 * time.Millisecond, 64, 2}, // one wide batch, multi-worker kernel
	}
	for _, tc := range cases {
		name := fmt.Sprintf("window=%s/batch=%d/workers=%d", tc.window, tc.maxBatch, tc.workers)
		t.Run(name, func(t *testing.T) {
			eng, err := asrs.NewEngine(ds, asrs.EngineOptions{
				IndexGranularity: 32,
				Search:           asrs.Options{Workers: tc.workers},
			})
			if err != nil {
				t.Fatal(err)
			}
			coal := server.NewCoalescer(context.Background(), eng, tc.window, tc.maxBatch)
			defer coal.Close()

			got := make([]float64, len(reqs))
			errs := make([]error, len(reqs))
			var wg sync.WaitGroup
			for i := range reqs {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					resp := <-coal.Submit(reqs[i])
					if resp.Err != nil {
						errs[i] = resp.Err
						return
					}
					got[i] = resp.Results[0].Dist
				}(i)
			}
			wg.Wait()
			for i := range reqs {
				if errs[i] != nil {
					t.Fatalf("client %d failed: %v", i, errs[i])
				}
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("client %d: coalesced answer %v != sequential %v", i, got[i], want[i])
				}
			}
			if tc.window > 0 {
				st := coal.Stats()
				if st.Batches == 0 || st.BatchedRequests != int64(len(reqs)) {
					t.Fatalf("coalescer stats inconsistent: %+v", st)
				}
			}
		})
	}
}

// TestCoalescerMaxBatchFlush: a burst larger than MaxBatch must flush
// early instead of waiting out a long window.
func TestCoalescerMaxBatchFlush(t *testing.T) {
	ds, _, reqs := corpus(t)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{IndexGranularity: 32})
	if err != nil {
		t.Fatal(err)
	}
	// A window far longer than the test timeout: only the MaxBatch path
	// can deliver in time.
	coal := server.NewCoalescer(context.Background(), eng, time.Hour, 4)
	defer coal.Close()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := <-coal.Submit(reqs[i])
			if resp.Err != nil {
				t.Errorf("client %d: %v", i, resp.Err)
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("full batch never flushed before the window elapsed")
	}
	if st := coal.Stats(); st.FullFlushes != 1 {
		t.Fatalf("full flushes = %d, want 1", st.FullFlushes)
	}
}

// TestCoalescerCloseFlushesPending: requests sitting in an open window
// at Close time must still get answers (graceful drain), and submits
// after Close must be refused with a closed channel.
func TestCoalescerCloseFlushesPending(t *testing.T) {
	ds, _, reqs := corpus(t)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{IndexGranularity: 32})
	if err != nil {
		t.Fatal(err)
	}
	coal := server.NewCoalescer(context.Background(), eng, time.Hour, 64)
	ch := coal.Submit(reqs[0])
	coal.Close()
	select {
	case resp, ok := <-ch:
		if !ok {
			t.Fatal("pending request dropped by Close instead of flushed")
		}
		if resp.Err != nil {
			t.Fatalf("drained request failed: %v", resp.Err)
		}
	default:
		t.Fatal("Close returned before delivering the pending response")
	}
	if _, ok := <-coal.Submit(reqs[0]); ok {
		t.Fatal("submit after Close delivered a response")
	}
	if st := coal.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
}
