package server_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
	"time"

	"asrs/internal/dataset"
	"asrs/internal/faultinject"
	"asrs/internal/server"
	"asrs/internal/wire"
)

// postSearch sends a /v1/search request and returns the NDJSON rows
// with the arrival time of each line.
func postSearch(t *testing.T, url string, sq wire.Search) ([]wire.SearchRow, []time.Duration, *http.Response) {
	t.Helper()
	raw, err := json.Marshal(sq)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	resp, err := http.Post(url+"/v1/search", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []wire.SearchRow
	var at []time.Duration
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var row wire.SearchRow
		if err := json.Unmarshal(sc.Bytes(), &row); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		rows = append(rows, row)
		at = append(at, time.Since(start))
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return rows, at, resp
}

// TestSearchMatchesQueryEndpoint: the expression front door and the
// struct front door answer identically. The @poi expression resolves
// the same registered composite singleton the wire query names, so
// every region, point and distance must agree exactly.
func TestSearchMatchesQueryEndpoint(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	orchard := dataset.SingaporeDistricts()[0].Rect

	rows, _, resp := postSearch(t, ts.URL, wire.Search{
		Q: `find top 2 similar to region(103.827,1.298,103.843,1.310) under @poi excluding example`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if len(rows) != 3 || !rows[2].Done || rows[2].Count != 2 {
		t.Fatalf("expected 2 result rows + done row, got %+v", rows)
	}

	hresp, body := postJSON(t, ts.URL+"/v1/query", server.Query{
		Composite:     "poi",
		Region:        &wire.Rect{MinX: orchard.MinX, MinY: orchard.MinY, MaxX: orchard.MaxX, MaxY: orchard.MaxY},
		ExcludeRegion: true,
		TopK:          2,
	})
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d: %s", hresp.StatusCode, body)
	}
	var want wire.Response
	if err := json.Unmarshal(body, &want); err != nil {
		t.Fatal(err)
	}
	if len(want.Results) != 2 {
		t.Fatalf("struct answer has %d results", len(want.Results))
	}
	for i := 0; i < 2; i++ {
		got, exp := rows[i].Result, want.Results[i]
		if got == nil {
			t.Fatalf("row %d has no result", i)
		}
		if !sameResult(*got, exp) {
			t.Errorf("row %d: search %+v != query %+v", i, *got, exp)
		}
	}
}

func sameResult(a, b wire.Result) bool {
	eq := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	if !eq(a.Dist, b.Dist) || !eq(a.Point.X, b.Point.X) || !eq(a.Point.Y, b.Point.Y) {
		return false
	}
	if !eq(a.Region.MinX, b.Region.MinX) || !eq(a.Region.MinY, b.Region.MinY) ||
		!eq(a.Region.MaxX, b.Region.MaxX) || !eq(a.Region.MaxY, b.Region.MaxY) {
		return false
	}
	if len(a.Rep) != len(b.Rep) {
		return false
	}
	for i := range a.Rep {
		if !eq(a.Rep[i], b.Rep[i]) {
			return false
		}
	}
	return true
}

// TestSearchStreamsLazily: with a per-round stall injected, the first
// result row must arrive while later rounds are still asleep — proof
// the stream is on the wire before the full set is materialized.
func TestSearchStreamsLazily(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	const stall = 300 * time.Millisecond
	faultinject.Activate(faultinject.NewPlan(3,
		faultinject.Spec{Point: "server.search.round", Action: faultinject.ActSleep, MaxEvery: 1, Delay: stall}))
	defer faultinject.Deactivate()

	rows, at, resp := postSearch(t, ts.URL, wire.Search{
		Q: `find top 3 similar to region(103.827,1.298,103.843,1.310) under @poi excluding example`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	if len(rows) != 4 || !rows[3].Done {
		t.Fatalf("expected 3 result rows + done row, got %d rows", len(rows))
	}
	// Row 1 flushes before the first stall; the done row sits behind
	// three stalls. Generous margins keep this robust under CI noise.
	if at[0] >= stall {
		t.Errorf("first row took %v, want < %v (stream not lazy)", at[0], stall)
	}
	if total := at[len(at)-1]; total < 2*stall {
		t.Errorf("done row took %v, want >= %v (stall not exercised — did the round hook move?)", total, 2*stall)
	}
}

// TestSearchExplain: an EXPLAIN query answers with one JSON report
// document, not a stream.
func TestSearchExplain(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	resp, body := postJSON(t, ts.URL+"/v1/search", wire.Search{
		Q: `explain find top 2 similar to region(103.827,1.298,103.843,1.310) under @poi excluding example`,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Canonical string `json:"canonical"`
		Composite string `json:"composite"`
		Strategy  string `json:"strategy"`
		Route     string `json:"route"`
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("explain is not one JSON doc: %v: %s", err, body)
	}
	if rep.Composite != "@poi" || rep.Strategy != "greedy-rounds" || rep.Route != "engine" {
		t.Errorf("unexpected report: %+v", rep)
	}
}

// TestSearchBadQuery: parse and plan errors are typed 400s.
func TestSearchBadQuery(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	for _, q := range []string{
		`find similar to`,
		`find similar to region(0,0,1,1) under dist(nosuchattr)`,
		`find similar to region(0,0,1,1) under @nosuchcomposite`,
	} {
		resp, body := postJSON(t, ts.URL+"/v1/search", wire.Search{Q: q})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("q=%q: status %d, want 400: %s", q, resp.StatusCode, body)
			continue
		}
		var er wire.Response
		if err := json.Unmarshal(body, &er); err != nil || er.Code != wire.CodeBadRequest {
			t.Errorf("q=%q: error body %s", q, body)
		}
	}
}
