package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"asrs"
	"asrs/internal/query"
	"asrs/internal/shard"
)

// Defaults for Config zero values.
const (
	// DefaultWindow is the coalescing window: how long the first request
	// of a batch may wait for company. It bounds the latency tax of
	// coalescing; 2ms is far below a search's own cost on serving-scale
	// corpora.
	DefaultWindow = 2 * time.Millisecond
	// DefaultMaxBatch caps requests per coalesced superstep.
	DefaultMaxBatch = 32
	// DefaultMaxInFlight bounds admitted requests (queued in a window +
	// executing); beyond it the server sheds load with 429.
	DefaultMaxInFlight = 256
	// DefaultTimeout bounds queries that do not pick their own.
	DefaultTimeout = 10 * time.Second
	// DefaultMaxTimeout clamps client-chosen timeouts.
	DefaultMaxTimeout = 60 * time.Second
	// maxBodyBytes bounds request bodies (targets and exclusion lists
	// are small; 8 MiB is generous).
	maxBodyBytes = 8 << 20
)

// Config configures a Server.
type Config struct {
	// Engine serves the queries (single-engine mode; exactly one of
	// Engine and Router must be set).
	Engine *asrs.Engine
	// Router serves the queries from a shard catalog (multi-shard mode):
	// extent-routed scatter–gather with per-shard fault isolation.
	// Queries bypass the coalescer — the router fans out internally.
	Router *shard.Router
	// StartUnready makes /readyz report 503 until SetReady(true) is
	// called — the boot sequence for daemons that open their listener
	// before warming shards. /healthz is liveness and stays 200.
	StartUnready bool
	// DefaultPartial is the partial-result policy for routed queries that
	// do not send their own ("strict" when empty). Router mode only.
	DefaultPartial string
	// Composites is the serving registry: wire `composite` names to the
	// long-lived singletons the engine's caches are keyed by (required,
	// at least one entry).
	Composites map[string]*asrs.Composite
	// Window is the coalescing window. Zero or negative disables
	// coalescing — every request dispatches alone (the ablation
	// baseline). Callers that want the default must say
	// server.DefaultWindow; a silent zero→default rewrite would make
	// the no-coalescing configuration unreachable by the obvious value.
	Window time.Duration
	// MaxBatch caps requests per coalesced superstep (0 selects
	// DefaultMaxBatch).
	MaxBatch int
	// MaxInFlight bounds admitted requests before 429 load shedding
	// (0 selects DefaultMaxInFlight).
	MaxInFlight int
	// Timeout is the per-query deadline for requests that do not send
	// timeout_ms (0 selects DefaultTimeout).
	Timeout time.Duration
	// MaxTimeout clamps client-chosen timeouts (0 selects
	// DefaultMaxTimeout).
	MaxTimeout time.Duration
}

// Server is the HTTP serving layer: handlers, the coalescer, admission
// control and the drain lifecycle. Create with New, mount via Handler,
// stop with Shutdown.
type Server struct {
	cfg    Config
	eng    *asrs.Engine  // nil in router mode
	router *shard.Router // nil in engine mode
	coal   *Coalescer    // nil in router mode
	mux    *http.ServeMux
	ready  atomic.Bool

	// planner compiles /v1/search query text against the serving schema,
	// with the registered composites resolvable as @name references. Its
	// interner means textually identical expressions share one composite
	// singleton — and through it the engine's dedup/prepared groups.
	planner *query.Planner

	// sem is the admission semaphore: one token per admitted request,
	// covering its whole life (window wait + search). Acquisition is
	// non-blocking — a full queue sheds with 429 + Retry-After rather
	// than stacking latency.
	sem chan struct{}

	// base is the serving context: every search runs under it. cancel
	// fires at the end of Shutdown's grace period, aborting stragglers
	// at their next kernel superstep boundary.
	base     context.Context
	cancel   context.CancelFunc
	draining atomic.Bool
	// inflight tracks engine work running outside the coalescer (the
	// /v1/batch path), so Shutdown's drain waits for it too. drainMu
	// orders inflight.Add against the draining flip: handlers register
	// under the read lock, Shutdown flips under the write lock, so no
	// Add can race a Wait that already observed zero.
	drainMu  sync.RWMutex
	inflight sync.WaitGroup

	// ewma tracks batch service time (the Retry-After feed); ladder is
	// the brownout state machine stepping the coalescer's limits under
	// sustained shedding. See degrade.go.
	ewma   serviceEWMA
	ladder *ladder

	nReceived atomic.Int64
	nShed     atomic.Int64
	nTimeouts atomic.Int64
	nBadReqs  atomic.Int64
	start     time.Time
}

// New validates the config and builds a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if (cfg.Engine == nil) == (cfg.Router == nil) {
		return nil, fmt.Errorf("server: config requires exactly one of an engine or a shard router")
	}
	switch cfg.DefaultPartial {
	case "", string(shard.Strict), string(shard.BestEffort):
	default:
		return nil, fmt.Errorf("server: unknown default partial policy %q", cfg.DefaultPartial)
	}
	if cfg.DefaultPartial != "" && cfg.Router == nil {
		return nil, fmt.Errorf("server: default partial policy requires router mode")
	}
	if len(cfg.Composites) == 0 {
		return nil, fmt.Errorf("server: config requires at least one registered composite")
	}
	for name, f := range cfg.Composites {
		if f == nil {
			return nil, fmt.Errorf("server: composite %q is nil", name)
		}
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = DefaultMaxBatch
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	base, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:    cfg,
		eng:    cfg.Engine,
		router: cfg.Router,
		sem:    make(chan struct{}, cfg.MaxInFlight),
		base:   base,
		cancel: cancel,
		start:  time.Now(),
	}
	s.ready.Store(!cfg.StartUnready)
	if cfg.Engine != nil {
		s.coal = NewCoalescer(base, cfg.Engine, cfg.Window, cfg.MaxBatch)
		s.coal.onService = s.ewma.Observe
		s.ladder = newLadder(cfg.Window, cfg.MaxBatch, s.coal.SetLimits)
	} else {
		// Router mode has no coalescer to throttle; the ladder still runs
		// so insert shedding and the degraded /healthz signal work.
		s.ladder = newLadder(cfg.Window, cfg.MaxBatch, func(time.Duration, int) {})
	}
	s.planner = query.NewPlanner(s.schema(), cfg.Composites)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/query", s.handleQuery)
	mux.HandleFunc("POST /v1/search", s.handleSearch)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/insert", s.handleInsert)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	s.mux = mux
	return s, nil
}

// SetReady flips the /readyz gate. Daemons that open their listener
// before warming (shard mode) start with StartUnready and call
// SetReady(true) once eager shards are loaded and WAL recovery is done.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Handler returns the server's HTTP handler with the standard
// middleware (panic recovery) applied.
func (s *Server) Handler() http.Handler { return recoverMiddleware(s.mux) }

// Shutdown drains the server gracefully: liveness flips to 503 and new
// queries are refused immediately, the pending coalescing window is
// flushed, and in-flight searches get until ctx's deadline to finish
// before the serving context is cancelled — which stops stragglers
// cooperatively at their next kernel superstep boundary. Always returns
// after in-flight work has stopped; the error reports whether the grace
// period expired first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		if s.coal != nil {
			s.coal.Close()
		}
		s.inflight.Wait() // batch and routed work runs outside the coalescer
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("server: drain grace period expired: %w", ctx.Err())
	}
	// Cancel the serving context either way: a no-op after a clean
	// drain, the cooperative abort for stragglers otherwise.
	s.cancel()
	<-done
	return err
}

// buildRequest compiles a wire query into an engine request. The
// returned cancel func releases the deadline timer and must be called
// once the response is delivered.
func (s *Server) buildRequest(wq Query) (asrs.QueryRequest, context.CancelFunc, error) {
	f, ok := s.cfg.Composites[wq.Composite]
	if !ok {
		return asrs.QueryRequest{}, nil, fmt.Errorf("unknown composite %q", wq.Composite)
	}
	norm, err := ParseNorm(wq.Norm)
	if err != nil {
		return asrs.QueryRequest{}, nil, err
	}
	a, b := wq.A, wq.B
	var q asrs.Query
	exclude := make([]asrs.Rect, 0, len(wq.Exclude)+1)
	for _, r := range wq.Exclude {
		exclude = append(exclude, RectLib(r))
	}
	switch {
	case wq.Region != nil && wq.Target != nil:
		return asrs.QueryRequest{}, nil, fmt.Errorf("set either target or region, not both")
	case wq.Region != nil:
		rq := RectLib(*wq.Region)
		if a == 0 {
			a = rq.Width()
		}
		if b == 0 {
			b = rq.Height()
		}
		// The current logical dataset (seed + ingested), so an example
		// region's representation includes objects inserted into it.
		q, err = asrs.QueryFromRegion(s.currentDataset(), f, wq.Weights, rq)
		if err != nil {
			return asrs.QueryRequest{}, nil, err
		}
		if wq.ExcludeRegion {
			exclude = append(exclude, rq)
		}
	case wq.Target != nil:
		q, err = asrs.QueryFromTarget(f, wq.Target, wq.Weights)
		if err != nil {
			return asrs.QueryRequest{}, nil, err
		}
	default:
		return asrs.QueryRequest{}, nil, fmt.Errorf("query requires a target or an example region")
	}
	q.Norm = norm
	if a <= 0 || b <= 0 {
		return asrs.QueryRequest{}, nil, fmt.Errorf("region size must be positive, got %g x %g", a, b)
	}
	if wq.TopK < 0 {
		return asrs.QueryRequest{}, nil, fmt.Errorf("top_k must be non-negative, got %d", wq.TopK)
	}
	if wq.Delta < 0 {
		return asrs.QueryRequest{}, nil, fmt.Errorf("delta must be non-negative, got %g", wq.Delta)
	}
	req := asrs.QueryRequest{Query: q, A: a, B: b, TopK: wq.TopK, Exclude: exclude}
	if wq.Extent != nil {
		ext := RectLib(*wq.Extent)
		if !ext.IsValid() {
			return asrs.QueryRequest{}, nil, fmt.Errorf("invalid extent: min must not exceed max")
		}
		req.Within = &ext
	}
	switch wq.Partial {
	case "":
	case string(shard.Strict), string(shard.BestEffort):
		if s.router == nil {
			return asrs.QueryRequest{}, nil, fmt.Errorf("partial is only valid on a sharded server")
		}
	default:
		return asrs.QueryRequest{}, nil, fmt.Errorf("unknown partial policy %q (want strict or best_effort)", wq.Partial)
	}
	if wq.Delta > 0 {
		// Pinning per-request options opts this query out of batch
		// grouping (a δ-approximate answer must never be shared with an
		// exact request); the search still coalesces into the superstep.
		// Start from the engine's defaults so only δ changes — the
		// operator's worker bound and grid settings must survive the pin.
		opt := s.searchOptions()
		opt.Delta = wq.Delta
		req.Options = &opt
	}
	if wq.TimeoutMS < 0 {
		return asrs.QueryRequest{}, nil, fmt.Errorf("timeout_ms must be non-negative, got %d", wq.TimeoutMS)
	}
	timeout := s.cfg.Timeout
	if wq.TimeoutMS > 0 {
		timeout = time.Duration(wq.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(s.base, timeout)
	req.Ctx = ctx
	return req, cancel, nil
}

// currentDataset is the live logical corpus in either serving mode.
func (s *Server) currentDataset() *asrs.Dataset {
	if s.router != nil {
		return s.router.Catalog().CurrentDataset()
	}
	return s.eng.CurrentDataset()
}

// searchOptions is the serving default search options in either mode.
func (s *Server) searchOptions() asrs.Options {
	if s.router != nil {
		return s.router.Catalog().SearchOptions()
	}
	return s.eng.SearchOptions()
}

// schema is the serving schema in either mode.
func (s *Server) schema() *asrs.Schema {
	if s.router != nil {
		return s.router.Catalog().Seed().Schema
	}
	return s.eng.Dataset().Schema
}

// routedRequest lifts a compiled engine request into the router's form.
func (s *Server) routedRequest(wq Query, req asrs.QueryRequest) shard.Request {
	partial := wq.Partial
	if partial == "" {
		partial = s.cfg.DefaultPartial
	}
	return shard.Request{
		Query:   req.Query,
		A:       req.A,
		B:       req.B,
		TopK:    req.TopK,
		Exclude: req.Exclude,
		Extent:  req.Within,
		Policy:  shard.PartialPolicy(partial),
		Options: req.Options,
	}
}

// routedResponseWire converts a router response to the wire schema,
// returning the HTTP status alongside. Coverage always rides along —
// partial best_effort answers are only trustworthy with their skip list.
func routedResponseWire(resp shard.Response, elapsed time.Duration) (Response, int) {
	out := Response{ElapsedMS: float64(elapsed.Microseconds()) / 1e3}
	cov := Coverage{Shards: resp.Coverage.Shards, Searched: resp.Coverage.Searched}
	for _, sk := range resp.Coverage.Skipped {
		cov.Skipped = append(cov.Skipped, SkippedShard{Shard: sk.Shard, Reason: sk.Reason})
	}
	out.Coverage = &cov
	if resp.Err != nil {
		status, code, retryable := classify(resp.Err)
		out.Error, out.Code, out.Retryable = resp.Err.Error(), code, retryable
		return out, status
	}
	out.Results = make([]Result, len(resp.Regions))
	for i := range resp.Regions {
		out.Results[i] = Result{
			Region: RectWire(resp.Regions[i]),
			Point:  Point{X: resp.Results[i].Point.X, Y: resp.Results[i].Point.Y},
			Dist:   resp.Results[i].Dist,
			Rep:    resp.Results[i].Rep,
		}
	}
	return out, http.StatusOK
}

// statusFor maps an engine response error to its HTTP status (the
// status leg of the classify taxonomy in errors.go).
func statusFor(err error) int {
	status, _, _ := classify(err)
	return status
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes a failure response with its taxonomy code and
// retryable bit (see errors.go).
func writeError(w http.ResponseWriter, status int, code string, retryable bool, format string, args ...any) {
	writeJSON(w, status, Response{Error: fmt.Sprintf(format, args...), Code: code, Retryable: retryable})
}

// writeDraining writes the draining 503. It carries the same jittered
// Retry-After as overload shedding: drain is equally transient (the
// replacement process or another replica comes up on the order of the
// service time), and the jitter keeps shed clients from returning in
// lockstep.
func (s *Server) writeDraining(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	writeError(w, http.StatusServiceUnavailable, CodeDraining, true, "server is draining")
}

// admit acquires n admission tokens — one per query, so a client batch
// weighs what it costs and cannot sidestep MaxInFlight by bundling —
// or sheds. ok=false means the 429 (or 503 during drain) has already
// been written. The caller has already counted the request in
// nReceived (at handler entry, so decode failures count too).
func (s *Server) admit(w http.ResponseWriter, n int) bool {
	if s.draining.Load() {
		s.writeDraining(w)
		return false
	}
	for got := 0; got < n; got++ {
		select {
		case s.sem <- struct{}{}:
		default:
			s.release(got)
			s.nShed.Add(1)
			s.ladder.note(true)
			// Retry-After derives from the batch service-time EWMA with
			// client-spreading jitter (degrade.go): shed clients come
			// back roughly when the work they were shed behind clears,
			// and never in lockstep. Never zero.
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
			writeError(w, http.StatusTooManyRequests, CodeOverloaded, true, "server at capacity (%d in flight)", s.cfg.MaxInFlight)
			return false
		}
	}
	s.ladder.note(false)
	return true
}

// retryAfter derives the Retry-After seconds for a shed response.
func (s *Server) retryAfter() int {
	return retryAfterSeconds(s.ewma.Value(), rand.Float64())
}

func (s *Server) release(n int) {
	for ; n > 0; n-- {
		<-s.sem
	}
}

// handleQuery serves POST /v1/query: decode, admit, coalesce, respond.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.nReceived.Add(1)
	// Admission before the body is even read: shedding must stay cheap
	// under exactly the overload it exists to protect against — a 429
	// costs no decode work.
	if !s.admit(w, 1) {
		return
	}
	handedOff := false
	defer func() {
		if !handedOff {
			s.release(1)
		}
	}()
	var wq Query
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&wq); err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "invalid request body: %v", err)
		return
	}
	req, cancel, err := s.buildRequest(wq)
	if err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "%v", err)
		return
	}
	defer cancel()
	// A disconnected client cancels its search: the request context is
	// derived from the serving context (drain), but net/http signals the
	// client going away through r.Context() — propagate that into the
	// search so abandoned work frees its workers and admission token
	// instead of running out its full deadline.
	stopWatch := context.AfterFunc(r.Context(), cancel)
	defer stopWatch()

	if s.router != nil {
		// Routed queries bypass the coalescer (the router fans out
		// internally) but register with the drain like batch work, so
		// Shutdown waits for them before closing shard engines.
		s.drainMu.RLock()
		if s.draining.Load() {
			s.drainMu.RUnlock()
			s.writeDraining(w)
			return
		}
		s.inflight.Add(1)
		s.drainMu.RUnlock()
		defer s.inflight.Done()
		resp := s.router.Query(req.Ctx, s.routedRequest(wq, req))
		s.ewma.Observe(time.Since(start))
		wresp, status := routedResponseWire(resp, time.Since(start))
		if status == http.StatusGatewayTimeout {
			s.nTimeouts.Add(1)
		}
		writeJSON(w, status, wresp)
		return
	}

	deliver := func(resp asrs.QueryResponse) {
		status := statusFor(resp.Err)
		if status == http.StatusGatewayTimeout {
			s.nTimeouts.Add(1)
		}
		writeJSON(w, status, ResponseWire(resp, time.Since(start)))
	}
	done := s.coal.Submit(req)
	select {
	case resp, ok := <-done:
		if !ok { // coalescer closed between admit and submit
			s.writeDraining(w)
			return
		}
		deliver(resp)
	case <-req.Ctx.Done():
		// The request's context fired while it sat in a window or behind
		// a long batch: its own deadline passed, or the drain grace
		// period expired and cancelled the serving context. Both select
		// cases may be ready at once — prefer an answer that already
		// arrived over discarding it as a timeout.
		select {
		case resp, ok := <-done:
			if ok {
				deliver(resp)
				return
			}
		default:
		}
		// The search is still running; it stops cooperatively at its
		// next superstep and the buffered done channel absorbs the late
		// delivery. Peers in the same batch are unaffected. The
		// admission token follows the orphaned search — MaxInFlight
		// bounds *engine* work, not handler lifetimes, or a stream of
		// short-deadline requests could stack unbounded concurrent
		// batches behind freed tokens. statusFor distinguishes the two
		// causes (504 deadline vs 503 drain), matching what the
		// done-channel path would have reported.
		handedOff = true
		go func() {
			<-done
			s.release(1)
		}()
		cerr := req.Ctx.Err()
		status, code, retryable := classify(cerr)
		if status == http.StatusGatewayTimeout {
			s.nTimeouts.Add(1)
		}
		writeError(w, status, code, retryable, "%v", cerr)
	}
}

// handleBatch serves POST /v1/batch: an explicit client-built batch.
// It bypasses the window (the client already batched) and goes straight
// to the engine's grouped batch path; per-query deadlines still apply.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.nReceived.Add(1)
	// One token before the decode keeps overload-path shedding cheap;
	// the batch's true weight is acquired after its size is known.
	if !s.admit(w, 1) {
		return
	}
	took := 1
	defer func() { s.release(took) }()
	var wb Batch
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&wb); err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "invalid request body: %v", err)
		return
	}
	if len(wb.Queries) == 0 {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "batch requires at least one query")
		return
	}
	if len(wb.Queries) > s.cfg.MaxInFlight {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "batch of %d exceeds the admission bound (%d)", len(wb.Queries), s.cfg.MaxInFlight)
		return
	}
	if extra := len(wb.Queries) - 1; extra > 0 {
		if !s.admit(w, extra) {
			return
		}
		took += extra
	}
	// Register with the drain before searching: this path bypasses the
	// coalescer, and Shutdown must wait for it like any other in-flight
	// work instead of cancelling it the moment the (idle) coalescer
	// closes. Re-checking draining under the read lock closes the race
	// with a concurrent Shutdown flipping the flag after admit.
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		s.writeDraining(w)
		return
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()

	reqs := make([]asrs.QueryRequest, len(wb.Queries))
	resps := make([]Response, len(wb.Queries))
	run := make([]int, 0, len(wb.Queries))
	cancels := make([]context.CancelFunc, 0, len(wb.Queries))
	for i, wq := range wb.Queries {
		req, cancel, err := s.buildRequest(wq)
		if err != nil {
			s.nBadReqs.Add(1)
			resps[i] = Response{Error: err.Error(), Code: CodeBadRequest, Status: http.StatusBadRequest}
			continue
		}
		defer cancel()
		cancels = append(cancels, cancel)
		reqs[i] = req
		run = append(run, i)
	}
	if len(run) > 0 {
		sub := make([]asrs.QueryRequest, len(run))
		for k, i := range run {
			sub[k] = reqs[i]
		}
		// Like handleQuery, a disconnected client cancels its queries —
		// each per-query context individually, since those take
		// precedence over the batch-level context inside the engine.
		stopWatch := context.AfterFunc(r.Context(), func() {
			for _, c := range cancels {
				c()
			}
		})
		defer stopWatch()
		if s.router != nil {
			// Routed batches run query-by-query: the router's parallelism
			// is across shards, not across queries, and sequential rounds
			// keep per-shard deadline budgets meaningful.
			for k, i := range run {
				resp := s.router.Query(sub[k].Ctx, s.routedRequest(wb.Queries[i], sub[k]))
				wresp, status := routedResponseWire(resp, time.Since(start))
				if status == http.StatusGatewayTimeout {
					s.nTimeouts.Add(1)
				}
				wresp.Status = status
				resps[i] = wresp
			}
			s.ewma.Observe(time.Since(start))
		} else {
			out := s.eng.QueryBatchCtx(s.base, sub)
			for k, i := range run {
				if errors.Is(out[k].Err, context.DeadlineExceeded) {
					s.nTimeouts.Add(1)
				}
				resps[i] = ResponseWire(out[k], time.Since(start))
				resps[i].Status = statusFor(out[k].Err)
			}
		}
	}
	writeJSON(w, http.StatusOK, BatchResponse{
		Responses: resps,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1e3,
	})
}

// handleInsert serves POST /v1/insert: appends a batch of objects to
// the served corpus as one atomic, durable unit (one WAL record; the
// 200 means the batch is staged and — under the daemon's sync policy —
// on stable storage). Inserted objects are visible to queries issued
// after the response.
//
// Admission is brownout-aware and stricter than the query path: inserts
// are deferrable background work nobody is waiting on, so a server
// whose degradation ladder has stepped down AT ALL sheds them outright
// (429 + Retry-After) — the remaining capacity serves queries first.
// Healthy servers admit inserts through the same in-flight semaphore as
// queries.
func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.nReceived.Add(1)
	if level := s.ladder.Level(); level > 0 {
		s.nShed.Add(1)
		s.ladder.note(true)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
		writeError(w, http.StatusTooManyRequests, CodeOverloaded, true,
			"server degraded (brownout level %d); inserts are shed first", level)
		return
	}
	if !s.admit(w, 1) {
		return
	}
	defer s.release(1)
	var wi Insert
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&wi); err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "invalid request body: %v", err)
		return
	}
	if len(wi.Objects) == 0 {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "insert requires at least one object")
		return
	}
	objs, err := s.decodeInsertObjects(wi.Objects)
	if err != nil {
		s.nBadReqs.Add(1)
		writeError(w, http.StatusBadRequest, CodeBadRequest, false, "%v", err)
		return
	}
	// Register with the drain before touching the engine: Shutdown closes
	// the engine's WAL after the drain, and an insert that already passed
	// admission must land (and ack) before that happens or after the
	// closed engine refuses it — never concurrently with the close.
	s.drainMu.RLock()
	if s.draining.Load() {
		s.drainMu.RUnlock()
		s.writeDraining(w)
		return
	}
	s.inflight.Add(1)
	s.drainMu.RUnlock()
	defer s.inflight.Done()

	insert := s.insertBatch
	if s.router != nil {
		insert = s.router.Insert
	}
	if err := insert(objs); err != nil {
		if errors.Is(err, asrs.ErrEngineClosed) {
			s.writeDraining(w)
			return
		}
		// The append did not acknowledge, so nothing was staged: the
		// client may retry (e.g. after a transient disk error) without
		// risking duplication on this server.
		writeError(w, http.StatusInternalServerError, CodeInternal, false, "insert failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{
		Ingested:      len(objs),
		TotalIngested: s.totalIngested(),
		ElapsedMS:     float64(time.Since(start).Microseconds()) / 1e3,
	})
}

func (s *Server) insertBatch(objs []asrs.Object) error { return s.eng.InsertBatch(objs) }

// totalIngested counts every object ingested since the seed corpus —
// summed across shards in router mode.
func (s *Server) totalIngested() int64 {
	if s.router == nil {
		return s.eng.Stats().Ingested
	}
	var total int64
	for _, sh := range s.router.Catalog().Shards() {
		if eng := sh.Loaded(); eng != nil {
			total += eng.Stats().Ingested
		}
	}
	return total
}

// decodeInsertObjects converts wire objects to library objects against
// the serving schema: every attribute must be present, categorical
// values arrive as domain labels, numeric values as numbers.
func (s *Server) decodeInsertObjects(in []InsertObject) ([]asrs.Object, error) {
	schema := s.schema()
	n := schema.Len()
	out := make([]asrs.Object, len(in))
	for i, wo := range in {
		if len(wo.Values) != n {
			return nil, fmt.Errorf("object %d has %d values, schema has %d attributes", i, len(wo.Values), n)
		}
		vals := make([]asrs.Value, n)
		for j := 0; j < n; j++ {
			a := schema.At(j)
			raw, ok := wo.Values[a.Name]
			if !ok {
				return nil, fmt.Errorf("object %d is missing attribute %q", i, a.Name)
			}
			if a.Kind == asrs.Categorical {
				label, ok := raw.(string)
				if !ok {
					return nil, fmt.Errorf("object %d attribute %q wants a domain label string, got %T", i, a.Name, raw)
				}
				idx := schema.ValueIndex(a.Name, label)
				if idx < 0 {
					return nil, fmt.Errorf("object %d attribute %q: label %q is not in the domain", i, a.Name, label)
				}
				vals[j].Cat = idx
			} else {
				num, ok := raw.(float64)
				if !ok {
					return nil, fmt.Errorf("object %d attribute %q wants a number, got %T", i, a.Name, raw)
				}
				vals[j].Num = num
			}
		}
		out[i] = asrs.Object{Loc: asrs.Point{X: wo.X, Y: wo.Y}, Values: vals}
	}
	return out, nil
}

// handleHealthz serves GET /healthz: pure liveness. It answers 200 as
// long as the process serves HTTP — including while draining or warming
// — so orchestrators never kill a process that is merely finishing or
// starting work. The payload carries the advisory state ("ok",
// "degraded" with the brownout level, "draining"); routing decisions
// belong to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusOK, map[string]any{"status": "draining"})
		return
	}
	if level := s.ladder.Level(); level > 0 {
		writeJSON(w, http.StatusOK, map[string]any{"status": "degraded", "degrade_level": level})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

// handleReadyz serves GET /readyz: the routing signal. 503 while
// draining (load balancers stop sending work before the listener
// closes) and while warming (eagerly-loaded shards and WAL recovery
// haven't finished — see SetReady); 200 once the server should receive
// traffic.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "warming"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
}

// Stats is the GET /stats document: server-level serving counters plus
// the engine's and coalescer's own.
type Stats struct {
	// UptimeSeconds since the server was built.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Received counts HTTP calls seen (a /v1/batch call counts once
	// regardless of how many queries it carries — Engine.Queries counts
	// per query; including shed and malformed calls); Shed the 429s;
	// Timeouts the 504s; BadRequests the 400s.
	Received    int64 `json:"received"`
	Shed        int64 `json:"shed"`
	Timeouts    int64 `json:"timeouts"`
	BadRequests int64 `json:"bad_requests"`
	// InFlight is the number of currently admitted requests and
	// MaxInFlight the admission bound.
	InFlight    int  `json:"in_flight"`
	MaxInFlight int  `json:"max_in_flight"`
	Draining    bool `json:"draining"`
	// WindowMS and MaxBatch echo the configured coalescing limits;
	// EffectiveWindowMS and EffectiveMaxBatch are the limits currently
	// in force (lower than configured while the brownout ladder is
	// stepped down).
	WindowMS          float64 `json:"window_ms"`
	MaxBatch          int     `json:"max_batch"`
	EffectiveWindowMS float64 `json:"effective_window_ms"`
	EffectiveMaxBatch int     `json:"effective_max_batch"`
	// Degraded/DegradeLevel report the brownout ladder (degrade.go);
	// BrownoutEntries counts healthy→brownout transitions and
	// ServiceEWMAMS is the batch service-time average behind
	// Retry-After.
	Degraded        bool    `json:"degraded"`
	DegradeLevel    int     `json:"degrade_level"`
	BrownoutEntries int64   `json:"brownout_entries"`
	ServiceEWMAMS   float64 `json:"service_ewma_ms"`
	// Composites lists the registered composite names.
	Composites []string         `json:"composites"`
	Coalescer  CoalescerStats   `json:"coalescer"`
	Engine     asrs.EngineStats `json:"engine"`
	// Shards is the per-shard breakdown (slab bounds, load state,
	// breaker state, engine counters) on a sharded server; nil otherwise.
	Shards *shard.RouterStats `json:"shards,omitempty"`
}

// handleStats serves GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	names := make([]string, 0, len(s.cfg.Composites))
	for name := range s.cfg.Composites {
		names = append(names, name)
	}
	sort.Strings(names)
	effWindow, effBatch := s.cfg.Window, s.cfg.MaxBatch
	var cstats CoalescerStats
	var estats asrs.EngineStats
	if s.coal != nil {
		effWindow, effBatch = s.coal.Limits()
		cstats = s.coal.Stats()
	}
	if s.eng != nil {
		estats = s.eng.Stats()
	}
	var rstats *shard.RouterStats
	if s.router != nil {
		rs := s.router.Stats()
		rstats = &rs
	}
	level := s.ladder.Level()
	writeJSON(w, http.StatusOK, Stats{
		UptimeSeconds:     time.Since(s.start).Seconds(),
		Received:          s.nReceived.Load(),
		Shed:              s.nShed.Load(),
		Timeouts:          s.nTimeouts.Load(),
		BadRequests:       s.nBadReqs.Load(),
		InFlight:          len(s.sem),
		MaxInFlight:       s.cfg.MaxInFlight,
		Draining:          s.draining.Load(),
		WindowMS:          float64(s.cfg.Window.Microseconds()) / 1e3,
		MaxBatch:          s.cfg.MaxBatch,
		EffectiveWindowMS: float64(effWindow.Microseconds()) / 1e3,
		EffectiveMaxBatch: effBatch,
		Degraded:          level > 0,
		DegradeLevel:      level,
		BrownoutEntries:   s.ladder.Entries(),
		ServiceEWMAMS:     float64(s.ewma.Value().Microseconds()) / 1e3,
		Composites:        names,
		Coalescer:         cstats,
		Engine:            estats,
		Shards:            rstats,
	})
}
