package server

import (
	"math/rand"
	"testing"
	"time"
)

// TestRetryAfterDerivation pins the Retry-After contract: derived from
// the service-time EWMA (ceil of the jittered estimate in whole
// seconds) and NEVER zero — a zero header is "retry immediately",
// which turns load shedding into a synchronized retry storm.
func TestRetryAfterDerivation(t *testing.T) {
	cases := []struct {
		ewma   time.Duration
		jitter float64
		want   int
	}{
		{0, 0, 1},                      // no observations yet: floor
		{0, 0.99, 1},                   // jitter cannot resurrect zero
		{-time.Second, 0.5, 1},         // defensive: negative is floor
		{300 * time.Millisecond, 0, 1}, // sub-second rounds UP to 1
		{999 * time.Millisecond, 0, 1},
		{time.Second, 0, 1},
		{time.Second, 0.99, 2}, // 1s * 1.495 -> ceil 2
		{2500 * time.Millisecond, 0, 3},
		{2 * time.Second, 0.5, 3}, // 2s * 1.25 -> ceil 3
		{10 * time.Second, 0, 10},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.ewma, c.jitter); got != c.want {
			t.Errorf("retryAfterSeconds(%v, %v) = %d, want %d", c.ewma, c.jitter, got, c.want)
		}
	}
	// Property sweep: never zero, monotone-ish in the EWMA.
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10_000; i++ {
		ewma := time.Duration(rng.Int63n(int64(120 * time.Second)))
		if got := retryAfterSeconds(ewma, rng.Float64()); got < 1 {
			t.Fatalf("retryAfterSeconds(%v) = %d < 1", ewma, got)
		}
	}
}

// TestServiceEWMAConverges: the average tracks the observed service
// times and feeds retryAfterSeconds with something of their magnitude.
func TestServiceEWMAConverges(t *testing.T) {
	var e serviceEWMA
	if e.Value() != 0 {
		t.Fatalf("zero EWMA = %v", e.Value())
	}
	for i := 0; i < 50; i++ {
		e.Observe(2 * time.Second)
	}
	if v := e.Value(); v < 1900*time.Millisecond || v > 2100*time.Millisecond {
		t.Fatalf("EWMA after steady 2s observations = %v", v)
	}
	if got := retryAfterSeconds(e.Value(), 0); got != 2 {
		t.Fatalf("Retry-After from 2s EWMA = %d, want 2", got)
	}
	e.Observe(-time.Second) // ignored
	if v := e.Value(); v < 1900*time.Millisecond {
		t.Fatalf("negative observation perturbed EWMA: %v", v)
	}
}

// fakeClockLadder builds a ladder on a controllable clock and records
// every applied limit change.
func fakeClockLadder(window time.Duration, maxBatch int) (*ladder, *time.Time, *[][2]int64) {
	now := time.Unix(1000, 0)
	var applied [][2]int64
	l := newLadder(window, maxBatch, func(w time.Duration, mb int) {
		applied = append(applied, [2]int64{int64(w), int64(mb)})
	})
	l.now = func() time.Time { return now }
	return l, &now, &applied
}

// TestLadderStepsDownUnderSustainedShedding: enough sheds inside one
// bucket halve the coalescing limits, once per bucket, down to the
// floor level.
func TestLadderStepsDownUnderSustainedShedding(t *testing.T) {
	l, now, applied := fakeClockLadder(2*time.Millisecond, 32)
	for i := 0; i < ladderStepSheds; i++ {
		l.note(true)
	}
	if l.Level() != 1 {
		t.Fatalf("level after %d sheds = %d, want 1", ladderStepSheds, l.Level())
	}
	// More sheds in the SAME bucket must not step again.
	for i := 0; i < 3*ladderStepSheds; i++ {
		l.note(true)
	}
	if l.Level() != 1 {
		t.Fatalf("multiple steps within one bucket: level %d", l.Level())
	}
	// Each following shed-heavy bucket steps one more, capped at max.
	for b := 0; b < 5; b++ {
		*now = now.Add(ladderBucket)
		for i := 0; i < ladderStepSheds; i++ {
			l.note(true)
		}
	}
	if l.Level() != ladderMaxLevel {
		t.Fatalf("level = %d, want cap %d", l.Level(), ladderMaxLevel)
	}
	w, mb := l.Current()
	if w != 2*time.Millisecond>>ladderMaxLevel || mb != 32>>ladderMaxLevel {
		t.Fatalf("effective limits %v/%d at level %d", w, mb, l.Level())
	}
	if len(*applied) != ladderMaxLevel {
		t.Fatalf("apply called %d times, want %d", len(*applied), ladderMaxLevel)
	}
	if l.Entries() != 1 {
		t.Fatalf("brownout entries = %d, want 1", l.Entries())
	}
}

// TestLadderRecoversAfterCalm: shed-free buckets step back up one
// level per calm streak until healthy, restoring the configured
// limits.
func TestLadderRecoversAfterCalm(t *testing.T) {
	l, now, _ := fakeClockLadder(2*time.Millisecond, 32)
	for b := 0; b < 2; b++ {
		for i := 0; i < ladderStepSheds; i++ {
			l.note(true)
		}
		*now = now.Add(ladderBucket)
		l.note(false) // close the bucket
	}
	if l.Level() != 2 {
		t.Fatalf("level = %d, want 2", l.Level())
	}
	// Calm traffic: one recovery step per ladderCalmBuckets clean buckets.
	steps := 0
	for l.Level() > 0 && steps < 20 {
		*now = now.Add(ladderBucket)
		l.note(false)
		steps++
	}
	if l.Level() != 0 {
		t.Fatalf("never recovered: level %d after %d calm buckets", l.Level(), steps)
	}
	w, mb := l.Current()
	if w != 2*time.Millisecond || mb != 32 {
		t.Fatalf("recovered limits %v/%d, want configured 2ms/32", w, mb)
	}
}

// TestLadderMixedBucketsHoldLevel: buckets with a few sheds (below the
// step threshold) neither deepen brownout nor count as calm.
func TestLadderMixedBucketsHoldLevel(t *testing.T) {
	l, now, _ := fakeClockLadder(2*time.Millisecond, 32)
	for i := 0; i < ladderStepSheds; i++ {
		l.note(true)
	}
	for b := 0; b < 6; b++ {
		*now = now.Add(ladderBucket)
		l.note(true) // one shed per bucket: not calm, not a step
	}
	if l.Level() != 1 {
		t.Fatalf("level drifted to %d under light shedding, want 1", l.Level())
	}
}

// TestCoalescerSetLimits: dynamic limits apply to later submits and
// are what Limits reports.
func TestCoalescerSetLimits(t *testing.T) {
	c := NewCoalescer(nil, nil, 4*time.Millisecond, 16)
	w, mb := c.Limits()
	if w != 4*time.Millisecond || mb != 16 {
		t.Fatalf("initial limits %v/%d", w, mb)
	}
	c.SetLimits(time.Millisecond, 0) // maxBatch floors at 1
	w, mb = c.Limits()
	if w != time.Millisecond || mb != 1 {
		t.Fatalf("after SetLimits: %v/%d, want 1ms/1", w, mb)
	}
}
