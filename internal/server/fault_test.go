package server_test

import (
	"encoding/json"
	"math"
	"net/http"
	"strconv"
	"sync"
	"testing"
	"time"

	"asrs/internal/faultinject"
	"asrs/internal/server"
)

func decodeResponse(t *testing.T, body []byte) server.Response {
	t.Helper()
	var wr server.Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatalf("decoding response %s: %v", body, err)
	}
	return wr
}

func decodeJSONBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// TestDispatchPanicFailpointIsolated: a panic injected into coalescer
// dispatch must come back as a typed 500 (code internal_panic, not
// retryable) — and the NEXT query, with the fault disarmed, must
// answer bit-identically. One poisoned batch, not a dead daemon.
func TestDispatchPanicFailpointIsolated(t *testing.T) {
	_, ts, eng := newTestServer(t, server.Config{Window: server.DefaultWindow})
	_, _, reqs := corpus(t)
	want := eng.Query(reqs[0])
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	faultinject.Activate(faultinject.NewPlan(7,
		faultinject.Spec{Point: "server.dispatch.panic", Action: faultinject.ActPanic, MaxEvery: 1}))
	resp, body := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[0]))
	faultinject.Deactivate()

	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s, want 500", resp.StatusCode, body)
	}
	wr := decodeResponse(t, body)
	if wr.Code != server.CodeInternalPanic || wr.Retryable {
		t.Fatalf("code=%q retryable=%v, want internal_panic/terminal", wr.Code, wr.Retryable)
	}

	resp, body = postJSON(t, ts.URL+"/v1/query", wireFor(reqs[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status = %d, body %s", resp.StatusCode, body)
	}
	wr = decodeResponse(t, body)
	if math.Float64bits(wr.Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
		t.Fatalf("post-fault answer %v, want %v", wr.Results[0].Dist, want.Results[0].Dist)
	}
}

// TestKernelPanicSurfacesThrough: a panic injected inside the kernel's
// concurrent hot loop must ride the whole ladder — recover() at the
// item boundary, *kernel.PanicError through Searcher.Err and the
// engine, classify() in the server — and arrive as a 500 with code
// internal_panic. Recovery is per-query: disarm and the server
// answers again.
func TestKernelPanicSurfacesThrough(t *testing.T) {
	_, ts, eng := newTestServer(t, server.Config{Window: server.DefaultWindow})
	_, _, reqs := corpus(t)
	want := eng.Query(reqs[1])
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	faultinject.Activate(faultinject.NewPlan(9,
		faultinject.Spec{Point: "kernel.process.panic", Action: faultinject.ActPanic, MaxEvery: 1}))
	resp, body := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[1]))
	faultinject.Deactivate()

	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, body %s, want 500", resp.StatusCode, body)
	}
	wr := decodeResponse(t, body)
	if wr.Code != server.CodeInternalPanic || wr.Retryable {
		t.Fatalf("code=%q retryable=%v, want internal_panic/terminal", wr.Code, wr.Retryable)
	}

	resp, body = postJSON(t, ts.URL+"/v1/query", wireFor(reqs[1]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-fault status = %d, body %s", resp.StatusCode, body)
	}
	wr = decodeResponse(t, body)
	if math.Float64bits(wr.Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
		t.Fatalf("post-fault answer %v, want %v", wr.Results[0].Dist, want.Results[0].Dist)
	}
}

// TestShedCarriesRetryAfterAndBrownout: under a slow dispatch and a
// one-token admission bound, concurrent traffic sheds with 429s whose
// Retry-After is a positive integer and whose body carries the
// overloaded/retryable taxonomy; sustained shedding steps the brownout
// ladder down, visible in /healthz and /stats.
func TestShedCarriesRetryAfterAndBrownout(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{
		Window:      server.DefaultWindow,
		MaxBatch:    8,
		MaxInFlight: 1,
	})
	_, _, reqs := corpus(t)

	// Every dispatch stalls 300ms, so one admitted query holds the only
	// token while the others arrive and shed.
	faultinject.Activate(faultinject.NewPlan(3,
		faultinject.Spec{Point: "server.dispatch.slow", Action: faultinject.ActSleep, MaxEvery: 1, Delay: 300 * time.Millisecond}))
	defer faultinject.Deactivate()

	var (
		mu    sync.Mutex
		sheds int
	)
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[i%len(reqs)]))
			if resp.StatusCode != http.StatusTooManyRequests {
				return
			}
			ra := resp.Header.Get("Retry-After")
			secs, err := strconv.Atoi(ra)
			if err != nil || secs < 1 {
				t.Errorf("429 Retry-After = %q, want integer >= 1", ra)
			}
			wr := decodeResponse(t, body)
			if wr.Code != server.CodeOverloaded || !wr.Retryable {
				t.Errorf("shed code=%q retryable=%v, want overloaded/retryable", wr.Code, wr.Retryable)
			}
			mu.Lock()
			sheds++
			mu.Unlock()
		}(i)
	}
	wg.Wait()

	if sheds < 8 {
		t.Fatalf("only %d sheds; the overload scenario did not materialize", sheds)
	}
	st := getStats(t, ts.URL)
	if !st.Degraded || st.DegradeLevel < 1 {
		t.Fatalf("stats degraded=%v level=%d after %d sheds, want brownout", st.Degraded, st.DegradeLevel, sheds)
	}
	if st.EffectiveMaxBatch >= st.MaxBatch {
		t.Fatalf("effective max batch %d not stepped below configured %d", st.EffectiveMaxBatch, st.MaxBatch)
	}
	if st.BrownoutEntries < 1 {
		t.Fatalf("brownout entries = %d, want >= 1", st.BrownoutEntries)
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz struct {
		Status string `json:"status"`
		Level  int    `json:"degrade_level"`
	}
	decodeJSONBody(t, resp, &hz)
	if hz.Status != "degraded" || hz.Level < 1 {
		t.Fatalf("healthz = %+v, want degraded with level >= 1", hz)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded healthz status = %d, want 200 (still serving)", resp.StatusCode)
	}
}
