package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"asrs"
	"asrs/internal/server"
)

// newTestServer builds a server over the shared corpus with the given
// config overrides applied (Engine/Composites are filled in).
func newTestServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server, *asrs.Engine) {
	t.Helper()
	ds, f, _ := corpus(t)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{IndexGranularity: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	cfg.Composites = map[string]*asrs.Composite{"poi": f}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts, eng
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func getStats(t *testing.T, url string) server.Stats {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st server.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// wireFor converts an engine request from the shared corpus into its
// wire form (targets are already materialized there).
func wireFor(req asrs.QueryRequest) server.Query {
	return server.Query{
		Composite: "poi",
		A:         req.A,
		B:         req.B,
		Target:    append([]float64(nil), req.Query.Target...),
	}
}

// TestServerQueryEndToEnd: a wire query must come back 200 with the
// same answer bits the engine gives directly, and /healthz and /stats
// must reflect the traffic.
func TestServerQueryEndToEnd(t *testing.T) {
	_, ts, eng := newTestServer(t, server.Config{})
	_, _, reqs := corpus(t)

	want := eng.Query(reqs[0])
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	resp, body := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[0]))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var wr server.Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Results) != 1 {
		t.Fatalf("results = %d, want 1", len(wr.Results))
	}
	if math.Float64bits(wr.Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
		t.Fatalf("served dist %v != engine dist %v", wr.Results[0].Dist, want.Results[0].Dist)
	}
	if got := server.RectLib(wr.Results[0].Region); got != want.Regions[0] {
		t.Fatalf("served region %+v != engine region %+v", got, want.Regions[0])
	}

	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", hz.StatusCode)
	}

	stats := getStats(t, ts.URL)
	if stats.Received != 1 || stats.Engine.Queries < 1 {
		t.Fatalf("stats did not count the query: %+v", stats)
	}
	if len(stats.Composites) != 1 || stats.Composites[0] != "poi" {
		t.Fatalf("composites = %v", stats.Composites)
	}
}

// TestServerConcurrentClientsBitIdentical is the HTTP half of the
// coalescer property test: N concurrent HTTP clients must get the same
// answer bits as sequential engine queries, while the server actually
// coalesces (batches > 0 with fewer batches than requests).
func TestServerConcurrentClientsBitIdentical(t *testing.T) {
	_, ts, eng := newTestServer(t, server.Config{Window: 5 * time.Millisecond, MaxBatch: 16})
	_, _, reqs := corpus(t)

	want := make([]float64, len(reqs))
	for i, req := range reqs {
		resp := eng.Query(req)
		if resp.Err != nil {
			t.Fatal(resp.Err)
		}
		want[i] = resp.Results[0].Dist
	}

	var wg sync.WaitGroup
	errs := make([]error, len(reqs))
	got := make([]float64, len(reqs))
	for i := range reqs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			raw, _ := json.Marshal(wireFor(reqs[i]))
			resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(raw))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			var wr server.Response
			if err := json.NewDecoder(resp.Body).Decode(&wr); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, wr.Error)
				return
			}
			got[i] = wr.Results[0].Dist
		}(i)
	}
	wg.Wait()
	for i := range reqs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("client %d: served %v != engine %v", i, got[i], want[i])
		}
	}
}

// TestServerBatchEndpoint: an explicit client batch must answer every
// query, with per-query failures isolated in their slot and classed by
// the per-response Status field.
func TestServerBatchEndpoint(t *testing.T) {
	_, ts, eng := newTestServer(t, server.Config{})
	_, _, reqs := corpus(t)

	batch := server.Batch{Queries: []server.Query{
		wireFor(reqs[0]),
		{Composite: "nope", A: 1, B: 1, Target: []float64{1}},
		wireFor(reqs[1]),
	}}
	resp, body := postJSON(t, ts.URL+"/v1/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var br server.BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Responses) != 3 {
		t.Fatalf("responses = %d, want 3", len(br.Responses))
	}
	if br.Responses[1].Error == "" || br.Responses[1].Status != http.StatusBadRequest {
		t.Fatalf("unknown composite in slot 1: error %q status %d, want 400", br.Responses[1].Error, br.Responses[1].Status)
	}
	for slot, reqIdx := range map[int]int{0: 0, 2: 1} {
		if br.Responses[slot].Error != "" {
			t.Fatalf("slot %d failed: %s", slot, br.Responses[slot].Error)
		}
		if br.Responses[slot].Status != http.StatusOK {
			t.Fatalf("slot %d status = %d, want 200", slot, br.Responses[slot].Status)
		}
		want := eng.Query(reqs[reqIdx])
		if math.Float64bits(br.Responses[slot].Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
			t.Fatalf("slot %d: %v != %v", slot, br.Responses[slot].Results[0].Dist, want.Results[0].Dist)
		}
	}
}

// TestServerQueryByExample: a region-based query with exclude_region
// must answer with a region that is not the example itself.
func TestServerQueryByExample(t *testing.T) {
	_, ts, _ := newTestServer(t, server.Config{})
	ds, _, _ := corpus(t)
	bounds := ds.Bounds()
	a, b := bounds.Width()/16, bounds.Height()/16
	ex := server.Rect{
		MinX: bounds.MinX + bounds.Width()*0.4,
		MinY: bounds.MinY + bounds.Height()*0.4,
	}
	ex.MaxX, ex.MaxY = ex.MinX+a, ex.MinY+b

	resp, body := postJSON(t, ts.URL+"/v1/query", server.Query{
		Composite:     "poi",
		Region:        &ex,
		ExcludeRegion: true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var wr server.Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	got := server.RectLib(wr.Results[0].Region)
	if got.IntersectsOpen(server.RectLib(ex)) {
		t.Fatalf("answer %+v overlaps the excluded example %+v", got, ex)
	}
	if math.Abs(got.Width()-a) > 1e-9 || math.Abs(got.Height()-b) > 1e-9 {
		t.Fatalf("answer extent %gx%g, want %gx%g", got.Width(), got.Height(), a, b)
	}
}

// TestServerDeadline504: a 1ms deadline on a real search must come back
// 504 promptly, and a concurrent normal query must still answer with
// the exact bits — a timed-out request never perturbs its peers.
func TestServerDeadline504(t *testing.T) {
	_, ts, eng := newTestServer(t, server.Config{Window: 2 * time.Millisecond})
	ds, f, reqs := corpus(t)

	want := eng.Query(reqs[0])
	if want.Err != nil {
		t.Fatal(want.Err)
	}

	// The doomed query covers a quarter of the city: plenty of
	// supersteps for the deadline to land inside.
	tgt := make([]float64, f.Dims())
	for i := range tgt {
		tgt[i] = 1e6
	}
	bounds := ds.Bounds()
	doomed := server.Query{
		Composite: "poi",
		A:         bounds.Width() / 4,
		B:         bounds.Height() / 4,
		Target:    tgt,
		TimeoutMS: 1,
	}
	var wg sync.WaitGroup
	wg.Add(2)
	var doomedStatus, peerStatus int
	var peer server.Response
	go func() {
		defer wg.Done()
		resp, _ := postJSON(t, ts.URL+"/v1/query", doomed)
		doomedStatus = resp.StatusCode
	}()
	go func() {
		defer wg.Done()
		resp, body := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[0]))
		peerStatus = resp.StatusCode
		_ = json.Unmarshal(body, &peer)
	}()
	wg.Wait()
	if doomedStatus != http.StatusGatewayTimeout {
		t.Fatalf("doomed query status = %d, want 504", doomedStatus)
	}
	if peerStatus != http.StatusOK {
		t.Fatalf("peer status = %d", peerStatus)
	}
	if math.Float64bits(peer.Results[0].Dist) != math.Float64bits(want.Results[0].Dist) {
		t.Fatalf("peer answer perturbed: %v != %v", peer.Results[0].Dist, want.Results[0].Dist)
	}
}

// TestServerBadRequests: malformed queries must 400 with a message and
// never reach the engine.
func TestServerBadRequests(t *testing.T) {
	_, ts, eng := newTestServer(t, server.Config{})
	_, f, _ := corpus(t)
	tgt := make([]float64, f.Dims())
	cases := []struct {
		name string
		q    server.Query
	}{
		{"unknown composite", server.Query{Composite: "nope", A: 1, B: 1, Target: tgt}},
		{"no target or region", server.Query{Composite: "poi", A: 1, B: 1}},
		{"both target and region", server.Query{Composite: "poi", A: 1, B: 1, Target: tgt, Region: &server.Rect{MaxX: 1, MaxY: 1}}},
		{"bad norm", server.Query{Composite: "poi", A: 1, B: 1, Target: tgt, Norm: "l3"}},
		{"wrong target dims", server.Query{Composite: "poi", A: 1, B: 1, Target: []float64{1}}},
		{"zero extent", server.Query{Composite: "poi", Target: tgt}},
		{"negative delta", server.Query{Composite: "poi", A: 1, B: 1, Target: tgt, Delta: -1}},
		{"negative timeout", server.Query{Composite: "poi", A: 1, B: 1, Target: tgt, TimeoutMS: -5}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/query", tc.q)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, body %s", tc.name, resp.StatusCode, body)
		}
	}
	if st := eng.Stats(); st.Queries != 0 {
		t.Fatalf("bad requests reached the engine: %+v", st)
	}
}

// TestServerSheds429: with a single admission slot held by a slow
// query, the next request must shed with 429 and a Retry-After header.
func TestServerSheds429(t *testing.T) {
	s, ts, _ := newTestServer(t, server.Config{MaxInFlight: 1, Window: time.Minute, MaxBatch: 64})
	_, _, reqs := corpus(t)

	// Park one request in the (long) coalescing window to occupy the
	// only slot; its response arrives when Shutdown flushes the window.
	slowDone := make(chan int, 1)
	go func() {
		resp, _ := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[0]))
		slowDone <- resp.StatusCode
	}()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStats(t, ts.URL)
		if st.InFlight >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first request never occupied the admission slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, body := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[1]))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, body %s — want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Drain: the parked request must still be answered (graceful), not
	// dropped.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if status := <-slowDone; status != http.StatusOK {
		t.Fatalf("parked request finished %d, want 200", status)
	}
}

// TestServerDrain: after Shutdown, /readyz reports 503 (the routing
// signal), /healthz stays 200 (pure liveness — the process still serves
// HTTP), and new queries are refused with a 503 that carries a jittered
// Retry-After.
func TestServerDrain(t *testing.T) {
	s, ts, _ := newTestServer(t, server.Config{})
	_, _, reqs := corpus(t)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	rz, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rz.Body.Close()
	if rz.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", rz.StatusCode)
	}
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var live map[string]any
	if err := json.NewDecoder(hz.Body).Decode(&live); err != nil {
		t.Fatal(err)
	}
	hz.Body.Close()
	if hz.StatusCode != http.StatusOK || live["status"] != "draining" {
		t.Fatalf("healthz after drain = %d %v, want 200 draining (liveness)", hz.StatusCode, live)
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", wireFor(reqs[0]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query after drain = %d, want 503", resp.StatusCode)
	}
	var wr server.Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Code != "draining" || !wr.Retryable {
		t.Fatalf("drain refusal code %q retryable %v, want draining/true", wr.Code, wr.Retryable)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Fatalf("draining 503 Retry-After = %q, want >= 1", ra)
	}
}
