package server

import (
	"asrs/internal/wire"
)

// The error taxonomy (stable codes + retryable bits + status mapping)
// lives in internal/wire; these aliases keep the serving code and its
// tests on their historical names. See internal/wire/errors.go for the
// full table.
const (
	CodeBadRequest       = wire.CodeBadRequest
	CodeNoFeasible       = wire.CodeNoFeasible
	CodeOverloaded       = wire.CodeOverloaded
	CodeDraining         = wire.CodeDraining
	CodeCanceled         = wire.CodeCanceled
	CodeShardUnavailable = wire.CodeShardUnavailable
	CodeDeadline         = wire.CodeDeadline
	CodeInternalPanic    = wire.CodeInternalPanic
	CodeInternal         = wire.CodeInternal
)

// errDispatchPanic marks coalescer-dispatch panics (recoverDeliver)
// so classify can brand them internal_panic like kernel panics.
var errDispatchPanic = wire.ErrDispatchPanic

// classify maps an engine response error to its HTTP status, wire
// code, and retryable bit.
func classify(err error) (status int, code string, retryable bool) {
	return wire.Classify(err)
}
