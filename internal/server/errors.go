package server

import (
	"context"
	"errors"
	"net/http"

	"asrs/internal/kernel"
)

// Wire-visible error taxonomy. Every failed response carries a stable
// machine-readable code and a retryable bit, so clients decide
// retry-vs-surface without string-matching error text:
//
//	code            status  retryable  meaning
//	bad_request     400     no         the request itself is invalid
//	overloaded      429     yes        shed by admission control; honor Retry-After
//	draining        503     yes        server shutting down; try another replica
//	canceled        503     yes        the serving context aborted the search mid-run
//	deadline        504     yes        the per-query deadline expired
//	internal_panic  500     no         a query panicked inside the engine (isolated)
//	internal        500     no         any other server-side failure
//
// Retryable means "the same request may succeed later or elsewhere":
// overload, drain and deadline are conditions of the moment; panics
// and validation failures are properties of the request or the build
// and retrying them wastes capacity.
const (
	CodeBadRequest    = "bad_request"
	CodeOverloaded    = "overloaded"
	CodeDraining      = "draining"
	CodeCanceled      = "canceled"
	CodeDeadline      = "deadline"
	CodeInternalPanic = "internal_panic"
	CodeInternal      = "internal"
)

// errDispatchPanic marks coalescer-dispatch panics (recoverDeliver)
// so classify can brand them internal_panic like kernel panics.
var errDispatchPanic = errors.New("server: panic in dispatch")

// classify maps an engine response error to its HTTP status, wire
// code, and retryable bit. Client input is validated before the engine
// is reached (400 in the handlers), so an unrecognized engine error
// here is a server-side failure.
func classify(err error) (status int, code string, retryable bool) {
	var pe *kernel.PanicError
	switch {
	case err == nil:
		return http.StatusOK, "", false
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadline, true
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, CodeCanceled, true
	case errors.As(err, &pe), errors.Is(err, errDispatchPanic):
		return http.StatusInternalServerError, CodeInternalPanic, false
	default:
		return http.StatusInternalServerError, CodeInternal, false
	}
}
