// Package server is the HTTP serving layer over asrs.Engine: a JSON API
// (POST /v1/query, POST /v1/batch, POST /v1/search, GET /healthz,
// GET /stats) that coalesces concurrent single queries into engine batch
// supersteps so the cross-query amortization of DESIGN.md §6 — request
// dedup and shared prepared query shapes — applies across independent
// clients, with admission control (bounded in-flight queue, 429 load
// shedding) and per-query deadlines (context cancellation checked
// cooperatively at kernel superstep boundaries, surfaced as 504). See
// DESIGN.md §7.
package server

import (
	"time"

	"asrs"
	"asrs/internal/wire"
)

// The wire schema lives in internal/wire — one package shared by the
// daemon, `asrsquery -json`, and the query-language frontend — and is
// aliased here so the serving code and its tests keep their historical
// names.

type (
	// Rect is the wire form of an axis-parallel rectangle.
	Rect = wire.Rect
	// Point is the wire form of a planar location.
	Point = wire.Point
	// Query is one similarity-query request.
	Query = wire.Query
	// Result is one answer region.
	Result = wire.Result
	// Response is the answer to one Query.
	Response = wire.Response
	// Coverage is the wire form of a routed answer's shard coverage.
	Coverage = wire.Coverage
	// SkippedShard names one shard a routed answer had to skip, and why.
	SkippedShard = wire.SkippedShard
	// Batch is the POST /v1/batch request body.
	Batch = wire.Batch
	// BatchResponse is the POST /v1/batch response body.
	BatchResponse = wire.BatchResponse
	// InsertObject is one object of a POST /v1/insert request.
	InsertObject = wire.InsertObject
	// Insert is the POST /v1/insert request body.
	Insert = wire.Insert
	// InsertResponse acknowledges a POST /v1/insert.
	InsertResponse = wire.InsertResponse
	// Search is the POST /v1/search request body (query language).
	Search = wire.Search
	// SearchRow is one NDJSON line of a streamed search response.
	SearchRow = wire.SearchRow
)

// ParseNorm maps the wire norm name to the library constant.
func ParseNorm(s string) (asrs.Norm, error) { return wire.ParseNorm(s) }

// RectWire converts a library rectangle to its wire form.
func RectWire(r asrs.Rect) Rect { return wire.RectWire(r) }

// RectLib converts a wire rectangle to the library form.
func RectLib(r Rect) asrs.Rect { return wire.RectLib(r) }

// ResponseWire converts an engine response to the wire schema.
// asrsquery -json uses it too, so CLI and daemon emit one format.
func ResponseWire(resp asrs.QueryResponse, elapsed time.Duration) Response {
	return wire.ResponseWire(resp, elapsed)
}
