package server_test

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/faultinject"
	"asrs/internal/server"
	"asrs/internal/shard"
)

// shardCorpus is the small routed-serving fixture: a random corpus, its
// composite, and the routed query's target.
func shardCorpus(t *testing.T) (*asrs.Dataset, *asrs.Composite) {
	t.Helper()
	ds := dataset.Random(60, 100, 77)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"},
		asrs.AggSpec{Kind: asrs.Sum, Attr: "val"},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ds, f
}

// newShardServer builds a 3-shard router-mode server over shardCorpus.
func newShardServer(t *testing.T, cfg server.Config, breaker shard.BreakerConfig) (*server.Server, *httptest.Server, *shard.Router, *asrs.Dataset, *asrs.Composite) {
	t.Helper()
	ds, f := shardCorpus(t)
	cat, err := shard.New(ds, shard.Config{
		Shards:     3,
		Composites: map[string]*asrs.Composite{"q": f},
		Names:      []string{"q"},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cat.Close() })
	rt := shard.NewRouter(cat, shard.RouterOptions{Breaker: breaker})
	cfg.Router = rt
	cfg.Composites = map[string]*asrs.Composite{"q": f}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, ts, rt, ds, f
}

// TestServerRouterEndToEnd: a router-mode server must answer extent
// queries — contained in one slab and straddling cuts — with the same
// distance bits as a merged-corpus windowed search, report full shard
// coverage, expose the per-shard /stats breakdown, and route inserts.
func TestServerRouterEndToEnd(t *testing.T) {
	_, ts, _, ds, f := newShardServer(t, server.Config{}, shard.BreakerConfig{})
	q := asrs.Query{F: f, Target: []float64{1, 2, 1, 5}}
	extents := []asrs.Rect{
		{MinX: 2, MinY: 2, MaxX: 98, MaxY: 98}, // straddles every cut
		{MinX: 1, MinY: 1, MaxX: 30, MaxY: 99}, // contained left
		{MinX: 20, MinY: 10, MaxX: 80, MaxY: 90},
	}
	for _, e := range extents {
		_, want, _, err := asrs.SearchWithin(ds, 7, 7, q, e, nil, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		we := server.RectWire(e)
		resp, body := postJSON(t, ts.URL+"/v1/query", server.Query{
			Composite: "q", A: 7, B: 7,
			Target: append([]float64(nil), q.Target...),
			Extent: &we,
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("extent %+v: status = %d, body %s", e, resp.StatusCode, body)
		}
		var wr server.Response
		if err := json.Unmarshal(body, &wr); err != nil {
			t.Fatal(err)
		}
		if len(wr.Results) != 1 {
			t.Fatalf("extent %+v: results = %d, want 1", e, len(wr.Results))
		}
		if math.Float64bits(wr.Results[0].Dist) != math.Float64bits(want.Dist) {
			t.Fatalf("extent %+v: routed dist %v != merged dist %v", e, wr.Results[0].Dist, want.Dist)
		}
		if wr.Coverage == nil || wr.Coverage.Shards != 3 || len(wr.Coverage.Skipped) != 0 {
			t.Fatalf("extent %+v: coverage = %+v, want 3 shards, no skips", e, wr.Coverage)
		}
	}

	// The per-shard stats breakdown rides on /stats in router mode.
	st := getStats(t, ts.URL)
	if st.Shards == nil || len(st.Shards.Shards) != 3 {
		t.Fatalf("stats.shards = %+v, want 3 shards", st.Shards)
	}

	// Inserts route by x through the shard engines' ingest path.
	resp, body := postJSON(t, ts.URL+"/v1/insert", server.Insert{Objects: []server.InsertObject{
		{X: 5, Y: 5, Values: map[string]any{"cat": "a", "val": 3.5}},
		{X: 95, Y: 95, Values: map[string]any{"cat": "b", "val": -1.0}},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert status = %d, body %s", resp.StatusCode, body)
	}
	var ir server.InsertResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Ingested != 2 || ir.TotalIngested != 2 {
		t.Fatalf("insert ack = %+v, want 2/2", ir)
	}

	// partial is a sharded-server knob with a closed vocabulary.
	resp, _ = postJSON(t, ts.URL+"/v1/query", server.Query{
		Composite: "q", A: 7, B: 7, Target: append([]float64(nil), q.Target...),
		Partial: "bogus",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus partial = %d, want 400", resp.StatusCode)
	}
}

// TestServerEngineExtent: a single-engine server serves the same extent
// wire field through the windowed search path, and rejects the
// shard-only partial knob.
func TestServerEngineExtent(t *testing.T) {
	ds, f := shardCorpus(t)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Engine: eng, Composites: map[string]*asrs.Composite{"q": f}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	q := asrs.Query{F: f, Target: []float64{1, 2, 1, 5}}
	e := asrs.Rect{MinX: 10, MinY: 10, MaxX: 90, MaxY: 90}
	_, want, _, err := asrs.SearchWithin(ds, 7, 7, q, e, nil, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	we := server.RectWire(e)
	resp, body := postJSON(t, ts.URL+"/v1/query", server.Query{
		Composite: "q", A: 7, B: 7,
		Target: append([]float64(nil), q.Target...),
		Extent: &we,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var wr server.Response
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if len(wr.Results) != 1 || math.Float64bits(wr.Results[0].Dist) != math.Float64bits(want.Dist) {
		t.Fatalf("windowed dist %+v != oracle %v", wr.Results, want.Dist)
	}
	if wr.Coverage != nil {
		t.Fatalf("engine-mode response has coverage %+v", wr.Coverage)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/query", server.Query{
		Composite: "q", A: 7, B: 7, Target: append([]float64(nil), q.Target...),
		Partial: "strict",
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial on engine server = %d, want 400", resp.StatusCode)
	}
}

// TestServerShardUnavailable: when every shard is lost (panic faults
// trip threshold-1 breakers with an hour of backoff), a strict routed
// query answers 503 with the typed shard_unavailable code, retryable,
// and coverage naming each skipped shard; best_effort with zero
// survivors is equally a 503.
func TestServerShardUnavailable(t *testing.T) {
	_, ts, _, _, _ := newShardServer(t, server.Config{}, shard.BreakerConfig{
		FailureThreshold: 1,
		BaseBackoff:      time.Hour,
		MaxBackoff:       time.Hour,
	})
	t.Cleanup(faultinject.Deactivate)
	faultinject.Activate(faultinject.NewPlan(1,
		faultinject.Spec{Point: "shard.search.panic", Action: faultinject.ActPanic, MaxEvery: 1},
	))

	q := []float64{1, 2, 1, 5}
	straddler := server.Rect{MinX: 2, MinY: 2, MaxX: 98, MaxY: 98}
	for _, partial := range []string{"strict", "best_effort"} {
		resp, body := postJSON(t, ts.URL+"/v1/query", server.Query{
			Composite: "q", A: 7, B: 7,
			Target:  append([]float64(nil), q...),
			Extent:  &straddler,
			Partial: partial,
		})
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: status = %d, body %s", partial, resp.StatusCode, body)
		}
		var wr server.Response
		if err := json.Unmarshal(body, &wr); err != nil {
			t.Fatal(err)
		}
		if wr.Code != "shard_unavailable" || !wr.Retryable {
			t.Fatalf("%s: code %q retryable %v, want shard_unavailable/true", partial, wr.Code, wr.Retryable)
		}
		if wr.Coverage == nil || len(wr.Coverage.Skipped) == 0 {
			t.Fatalf("%s: coverage %+v, want named skips", partial, wr.Coverage)
		}
	}

	// The per-shard breaker state is visible in /stats.
	st := getStats(t, ts.URL)
	if st.Shards == nil {
		t.Fatal("stats.shards missing in router mode")
	}
	open := 0
	for _, si := range st.Shards.Shards {
		if si.Breaker.State == "open" {
			open++
		}
	}
	if open == 0 {
		t.Fatalf("no open breakers after total loss: %+v", st.Shards.Shards)
	}
}

// TestServerReadyz: a StartUnready server reports warming on /readyz
// (while /healthz stays live) until SetReady flips the gate.
func TestServerReadyz(t *testing.T) {
	s, ts, _, _, _ := newShardServer(t, server.Config{StartUnready: true}, shard.BreakerConfig{})

	check := func(path string, wantStatus int, wantState string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var pl map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&pl); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != wantStatus || pl["status"] != wantState {
			t.Fatalf("%s = %d %v, want %d %q", path, resp.StatusCode, pl, wantStatus, wantState)
		}
	}
	check("/readyz", http.StatusServiceUnavailable, "warming")
	check("/healthz", http.StatusOK, "ok")
	s.SetReady(true)
	check("/readyz", http.StatusOK, "ready")
}
