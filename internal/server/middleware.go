package server

import (
	"log"
	"net/http"
	"runtime/debug"
	"time"
)

// recoverMiddleware converts a handler panic into a 500 instead of
// tearing down the whole connection (and with it, unrelated in-flight
// requests on HTTP/2). The stack goes to the process log; the client
// gets a generic error envelope.
func recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				log.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, CodeInternalPanic, false, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// LogMiddleware wraps a handler with one access-log line per request
// (method, path, status, duration). The daemon mounts it when -verbose
// is set; tests and benchmarks skip it.
func LogMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(sw, r)
		log.Printf("%s %s %d %s", r.Method, r.URL.Path, sw.status, time.Since(start))
	})
}

// statusWriter records the status code a handler wrote.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
