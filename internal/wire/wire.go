// Package wire is the one JSON schema shared by the daemon
// (internal/server), `asrsquery -json`, and the query-language frontend
// (internal/query): request/response shapes, the error taxonomy, and
// the conversions between wire and library forms. Having a single
// package means CLI output, server responses, and compiled query plans
// all target the same field names and failure classes.
package wire

import (
	"fmt"
	"time"

	"asrs"
)

// Rect is the wire form of an axis-parallel rectangle.
type Rect struct {
	MinX float64 `json:"min_x"`
	MinY float64 `json:"min_y"`
	MaxX float64 `json:"max_x"`
	MaxY float64 `json:"max_y"`
}

// Point is the wire form of a planar location.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Query is one similarity-query request. The target representation
// comes either from Target directly (the "virtual region" usage) or is
// computed from an example Region; exactly one must be set.
type Query struct {
	// Composite names the serving composite aggregator (the daemon's
	// registry key; GET /stats lists the registered names).
	Composite string `json:"composite"`
	// A, B are the answer region's width and height. When an example
	// Region is given they default to its width and height.
	A float64 `json:"a,omitempty"`
	B float64 `json:"b,omitempty"`
	// Target is the aggregate representation to match.
	Target []float64 `json:"target,omitempty"`
	// Region is the query-by-example alternative: the server computes
	// Target from the objects inside it.
	Region *Rect `json:"region,omitempty"`
	// ExcludeRegion excludes the example Region from the answer set
	// (without it, an example region is its own zero-distance answer).
	ExcludeRegion bool `json:"exclude_region,omitempty"`
	// Weights are the per-dimension distance weights (nil = unit).
	Weights []float64 `json:"weights,omitempty"`
	// Norm is "l1" (default) or "l2".
	Norm string `json:"norm,omitempty"`
	// TopK asks for the k best non-overlapping regions (0 or 1 = best).
	TopK int `json:"top_k,omitempty"`
	// Exclude lists rectangles no answer region may overlap.
	Exclude []Rect `json:"exclude,omitempty"`
	// Delta selects the (1+δ)-approximate search (0 = exact).
	Delta float64 `json:"delta,omitempty"`
	// Extent restricts answers to regions contained in the closed
	// rectangle. On a sharded server this is the routing key (extents
	// inside one shard's slab answer from that shard alone); on a
	// single-engine server it runs the windowed search directly.
	Extent *Rect `json:"extent,omitempty"`
	// Partial is the shard partial-result policy: "strict" (default —
	// fail with shard_unavailable if any needed shard is down) or
	// "best_effort" (answer from survivors, report skips in coverage).
	// Only valid on a sharded server.
	Partial string `json:"partial,omitempty"`
	// TimeoutMS bounds this query individually; 0 selects the server's
	// default, and values above the server's maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Result is one answer region.
type Result struct {
	Region Rect      `json:"region"`
	Point  Point     `json:"point"`
	Dist   float64   `json:"dist"`
	Rep    []float64 `json:"rep"`
}

// Response is the answer to one Query.
type Response struct {
	Results []Result `json:"results,omitempty"`
	// Error is the failure message ("" on success). On /v1/query the
	// HTTP status carries the class (400 invalid, 504 deadline, 503
	// drain/shed, 500 server fault); on /v1/batch the HTTP status is
	// 200 for the envelope and each response's Status carries its own
	// class instead, so batch clients can retry timeouts without
	// string-matching error text.
	Error string `json:"error,omitempty"`
	// Code is the stable machine-readable failure class (see the
	// taxonomy in errors.go: bad_request, overloaded, draining,
	// canceled, deadline, internal_panic, internal). Empty on success.
	Code string `json:"code,omitempty"`
	// Retryable reports whether the same request may succeed if
	// retried later or on another replica. False on success.
	Retryable bool `json:"retryable,omitempty"`
	// Status is the per-query HTTP-style status code, set on batch
	// responses (0 on /v1/query, whose transport status says the same).
	Status int `json:"status,omitempty"`
	// Coverage reports, on a sharded server, which shards produced this
	// answer and which were skipped (best_effort answers may be partial;
	// a complete answer has an empty skip list). Nil on single-engine
	// servers.
	Coverage  *Coverage `json:"coverage,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms"`
}

// Coverage is the wire form of a routed answer's shard coverage.
type Coverage struct {
	Shards   int            `json:"shards"`
	Searched []string       `json:"searched,omitempty"`
	Skipped  []SkippedShard `json:"skipped,omitempty"`
}

// SkippedShard names one shard a routed answer had to skip, and why.
type SkippedShard struct {
	Shard  string `json:"shard"`
	Reason string `json:"reason"`
}

// Batch is the POST /v1/batch request body.
type Batch struct {
	Queries []Query `json:"queries"`
}

// InsertObject is one object of a POST /v1/insert request. Values is
// keyed by attribute name; categorical attributes take their domain
// label as a string, numeric attributes a number. Every attribute of
// the serving schema must be present.
type InsertObject struct {
	X      float64        `json:"x"`
	Y      float64        `json:"y"`
	Values map[string]any `json:"values"`
}

// Insert is the POST /v1/insert request body. The whole batch is one
// atomic durable unit: either every object is acknowledged (and
// survives a crash, per the WAL sync policy) or none is.
type Insert struct {
	Objects []InsertObject `json:"objects"`
}

// InsertResponse acknowledges a POST /v1/insert. Ingested counts the
// objects of THIS request; TotalIngested every object ingested since
// the seed corpus (including recovered ones). Failures use the standard
// error Response shape instead.
type InsertResponse struct {
	Ingested      int     `json:"ingested"`
	TotalIngested int64   `json:"total_ingested"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

// BatchResponse is the POST /v1/batch response body; Responses is
// index-aligned with the request's Queries, and per-query failures land
// in the corresponding Response.Error without failing the batch.
type BatchResponse struct {
	Responses []Response `json:"responses"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// Search is the POST /v1/search request body: a query expressed in the
// declarative language (DESIGN.md §12) instead of the struct schema.
type Search struct {
	// Q is the query text, e.g.
	// "find top 3 similar to region(103.8,1.29,103.85,1.31) under @category excluding example".
	Q string `json:"q"`
	// Partial is the shard partial-result policy (see Query.Partial).
	Partial string `json:"partial,omitempty"`
	// TimeoutMS bounds the whole search (see Query.TimeoutMS).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// SearchRow is one NDJSON line of a streamed POST /v1/search response.
// Exactly one of Result / Done / Error forms is populated per line:
// result rows carry Result and Rank; the final row carries Done (with
// Count and ElapsedMS); error rows carry Error/Code/Retryable and
// terminate the stream.
type SearchRow struct {
	Rank   int     `json:"rank,omitempty"`
	Result *Result `json:"result,omitempty"`
	// Done marks the terminal success row.
	Done  bool `json:"done,omitempty"`
	Count int  `json:"count,omitempty"`
	// Coverage rides the terminal row on sharded servers.
	Coverage  *Coverage `json:"coverage,omitempty"`
	ElapsedMS float64   `json:"elapsed_ms,omitempty"`
	Error     string    `json:"error,omitempty"`
	Code      string    `json:"code,omitempty"`
	Retryable bool      `json:"retryable,omitempty"`
}

// ParseNorm maps the wire norm name to the library constant.
func ParseNorm(s string) (asrs.Norm, error) {
	switch s {
	case "", "l1", "L1":
		return asrs.L1, nil
	case "l2", "L2":
		return asrs.L2, nil
	}
	return asrs.L1, fmt.Errorf("unknown norm %q (want l1 or l2)", s)
}

// RectWire converts a library rectangle to its wire form.
func RectWire(r asrs.Rect) Rect {
	return Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// RectLib converts a wire rectangle to the library form.
func RectLib(r Rect) asrs.Rect {
	return asrs.Rect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY}
}

// ResponseWire converts an engine response to the wire schema.
// asrsquery -json uses it too, so CLI and daemon emit one format.
func ResponseWire(resp asrs.QueryResponse, elapsed time.Duration) Response {
	out := Response{ElapsedMS: float64(elapsed.Microseconds()) / 1e3}
	if resp.Err != nil {
		out.Error = resp.Err.Error()
		_, out.Code, out.Retryable = Classify(resp.Err)
		return out
	}
	out.Results = make([]Result, len(resp.Regions))
	for i := range resp.Regions {
		out.Results[i] = Result{
			Region: RectWire(resp.Regions[i]),
			Point:  Point{X: resp.Results[i].Point.X, Y: resp.Results[i].Point.Y},
			Dist:   resp.Results[i].Dist,
			Rep:    resp.Results[i].Rep,
		}
	}
	return out
}
