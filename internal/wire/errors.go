package wire

import (
	"context"
	"errors"
	"net/http"

	"asrs"
	"asrs/internal/kernel"
	"asrs/internal/shard"
)

// Wire-visible error taxonomy. Every failed response carries a stable
// machine-readable code and a retryable bit, so clients decide
// retry-vs-surface without string-matching error text:
//
//	code               status  retryable  meaning
//	bad_request        400     no         the request itself is invalid
//	no_feasible_region 404     no         every candidate region is excluded or out of extent
//	overloaded         429     yes        shed by admission control; honor Retry-After
//	draining           503     yes        server shutting down; try another replica
//	canceled           503     yes        the serving context aborted the search mid-run
//	shard_unavailable  503     yes        a shard the query needed is tripped/failed; retry
//	deadline           504     yes        the per-query deadline expired
//	internal_panic     500     no         a query panicked inside the engine (isolated)
//	internal           500     no         any other server-side failure
//
// Retryable means "the same request may succeed later or elsewhere":
// overload, drain, deadline and shard unavailability are conditions of
// the moment (breakers reclose, probes readmit); panics and validation
// failures are properties of the request or the build and retrying them
// wastes capacity.
const (
	CodeBadRequest       = "bad_request"
	CodeNoFeasible       = "no_feasible_region"
	CodeOverloaded       = "overloaded"
	CodeDraining         = "draining"
	CodeCanceled         = "canceled"
	CodeShardUnavailable = "shard_unavailable"
	CodeDeadline         = "deadline"
	CodeInternalPanic    = "internal_panic"
	CodeInternal         = "internal"
)

// ErrDispatchPanic marks coalescer-dispatch panics (recoverDeliver)
// so Classify can brand them internal_panic like kernel panics.
var ErrDispatchPanic = errors.New("server: panic in dispatch")

// Classify maps an engine response error to its HTTP status, wire
// code, and retryable bit. Client input is validated before the engine
// is reached (400 in the handlers), so an unrecognized engine error
// here is a server-side failure.
func Classify(err error) (status int, code string, retryable bool) {
	var pe *kernel.PanicError
	var ue *shard.UnavailableError
	switch {
	case err == nil:
		return http.StatusOK, "", false
	case errors.Is(err, asrs.ErrExtentTooSmall):
		return http.StatusBadRequest, CodeBadRequest, false
	case errors.Is(err, asrs.ErrNoFeasibleRegion):
		return http.StatusNotFound, CodeNoFeasible, false
	case errors.As(err, &ue):
		return http.StatusServiceUnavailable, CodeShardUnavailable, true
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, CodeDeadline, true
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, CodeCanceled, true
	case errors.As(err, &pe), errors.Is(err, ErrDispatchPanic):
		return http.StatusInternalServerError, CodeInternalPanic, false
	default:
		return http.StatusInternalServerError, CodeInternal, false
	}
}
