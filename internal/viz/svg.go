// Package viz renders datasets and regions to SVG — the library's
// equivalent of the paper's map figures (Fig 14(a)): object points colored
// by a categorical attribute, with labeled query/answer rectangles
// overlaid. Output is plain SVG 1.1, no external assets.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"asrs/internal/attr"
	"asrs/internal/geom"
)

// Palette is the default categorical color cycle.
var Palette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// Box is a labeled rectangle overlay.
type Box struct {
	Rect  geom.Rect
	Label string
	Color string // CSS color; default red
}

// Map is one renderable scene.
type Map struct {
	Dataset *attr.Dataset
	// ColorBy names a categorical attribute used for point colors; empty
	// renders all points in gray.
	ColorBy string
	Boxes   []Box
	// WidthPx is the output width in pixels (default 800); height follows
	// the data aspect ratio.
	WidthPx int
	// PointRadius in pixels (default 1.5).
	PointRadius float64
}

// Render writes the scene as an SVG document.
func Render(w io.Writer, m Map) error {
	if m.Dataset == nil || m.Dataset.Schema == nil {
		return fmt.Errorf("viz: nil dataset")
	}
	bounds := m.Dataset.Bounds()
	for _, b := range m.Boxes {
		bounds = bounds.Union(b.Rect)
	}
	if !bounds.IsValid() || bounds.IsEmpty() {
		return fmt.Errorf("viz: nothing to draw (bounds %v)", bounds)
	}
	widthPx := m.WidthPx
	if widthPx <= 0 {
		widthPx = 800
	}
	r := m.PointRadius
	if r <= 0 {
		r = 1.5
	}
	// 4% margin.
	mx := bounds.Width() * 0.04
	my := bounds.Height() * 0.04
	bounds = geom.Rect{MinX: bounds.MinX - mx, MinY: bounds.MinY - my, MaxX: bounds.MaxX + mx, MaxY: bounds.MaxY + my}
	scale := float64(widthPx) / bounds.Width()
	heightPx := int(bounds.Height()*scale) + 1

	// SVG y grows downward; data y grows upward.
	px := func(p geom.Point) (float64, float64) {
		return (p.X - bounds.MinX) * scale, (bounds.MaxY - p.Y) * scale
	}

	colorIdx := -1
	var domainSize int
	if m.ColorBy != "" {
		a, ok := m.Dataset.Schema.Lookup(m.ColorBy)
		if !ok || a.Kind != attr.Categorical {
			return fmt.Errorf("viz: ColorBy attribute %q is not a categorical attribute of the schema", m.ColorBy)
		}
		colorIdx = m.Dataset.Schema.Index(m.ColorBy)
		domainSize = a.DomainSize()
	}

	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		widthPx, heightPx, widthPx, heightPx)
	fmt.Fprintf(bw, `<rect width="%d" height="%d" fill="white"/>`+"\n", widthPx, heightPx)

	for i := range m.Dataset.Objects {
		o := &m.Dataset.Objects[i]
		x, y := px(o.Loc)
		color := "#888888"
		if colorIdx >= 0 {
			c := o.Values[colorIdx].Cat
			if c >= 0 && c < domainSize {
				color = Palette[c%len(Palette)]
			}
		}
		fmt.Fprintf(bw, `<circle cx="%.2f" cy="%.2f" r="%.2f" fill="%s" fill-opacity="0.7"/>`+"\n", x, y, r, color)
	}

	for _, b := range m.Boxes {
		color := b.Color
		if color == "" {
			color = "#d62728"
		}
		x0, y1 := px(b.Rect.BL())
		x1, y0 := px(b.Rect.TR())
		fmt.Fprintf(bw, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			x0, y0, x1-x0, y1-y0, color)
		if b.Label != "" {
			fmt.Fprintf(bw, `<text x="%.2f" y="%.2f" font-family="sans-serif" font-size="14" fill="%s">%s</text>`+"\n",
				x0, y0-4, color, escape(b.Label))
		}
	}

	// Legend for the categorical coloring.
	if colorIdx >= 0 {
		a, _ := m.Dataset.Schema.Lookup(m.ColorBy)
		for i, v := range a.Domain {
			y := 18 + 16*i
			fmt.Fprintf(bw, `<circle cx="12" cy="%d" r="5" fill="%s"/>`+"\n", y, Palette[i%len(Palette)])
			fmt.Fprintf(bw, `<text x="22" y="%d" font-family="sans-serif" font-size="12" fill="#333">%s</text>`+"\n", y+4, escape(v))
		}
	}
	fmt.Fprintln(bw, `</svg>`)
	return bw.Flush()
}

func escape(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '<':
			out = append(out, "&lt;"...)
		case '>':
			out = append(out, "&gt;"...)
		case '&':
			out = append(out, "&amp;"...)
		default:
			out = append(out, s[i])
		}
	}
	return string(out)
}
