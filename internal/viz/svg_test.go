package viz_test

import (
	"bytes"
	"strings"
	"testing"

	"asrs/internal/attr"
	"asrs/internal/dataset"
	"asrs/internal/geom"
	"asrs/internal/viz"
)

func TestRenderCaseStudyMap(t *testing.T) {
	ds := dataset.SingaporePOI(1)
	var buf bytes.Buffer
	districts := dataset.SingaporeDistricts()
	err := viz.Render(&buf, viz.Map{
		Dataset: ds,
		ColorBy: "category",
		Boxes: []viz.Box{
			{Rect: districts[0].Rect, Label: "Orchard"},
			{Rect: districts[1].Rect, Label: "Marina Bay", Color: "#111111"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("not an SVG document")
	}
	if strings.Count(out, "<circle") < dataset.SingaporePOICount {
		t.Fatalf("expected ≥%d circles", dataset.SingaporePOICount)
	}
	if !strings.Contains(out, ">Orchard<") || !strings.Contains(out, ">Marina Bay<") {
		t.Fatal("labels missing")
	}
	// Legend entries for every category.
	for _, c := range dataset.POICategories {
		if !strings.Contains(out, ">"+strings.ReplaceAll(c, "&", "&amp;")+"<") {
			t.Fatalf("legend missing %q", c)
		}
	}
}

func TestRenderValidation(t *testing.T) {
	if err := viz.Render(&bytes.Buffer{}, viz.Map{}); err == nil {
		t.Error("nil dataset accepted")
	}
	ds := dataset.Random(10, 10, 1)
	if err := viz.Render(&bytes.Buffer{}, viz.Map{Dataset: ds, ColorBy: "val"}); err == nil {
		t.Error("numeric ColorBy accepted")
	}
	if err := viz.Render(&bytes.Buffer{}, viz.Map{Dataset: ds, ColorBy: "ghost"}); err == nil {
		t.Error("unknown ColorBy accepted")
	}
	empty := &attr.Dataset{Schema: ds.Schema}
	if err := viz.Render(&bytes.Buffer{}, viz.Map{Dataset: empty}); err == nil {
		t.Error("empty scene accepted")
	}
}

func TestRenderGrayPoints(t *testing.T) {
	ds := dataset.Random(50, 20, 2)
	var buf bytes.Buffer
	if err := viz.Render(&buf, viz.Map{Dataset: ds, WidthPx: 300, PointRadius: 3}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "#888888") {
		t.Fatal("gray default coloring missing")
	}
	if !strings.Contains(buf.String(), `width="300"`) {
		t.Fatal("custom width ignored")
	}
}

func TestRenderEscaping(t *testing.T) {
	schema := attr.MustSchema(attr.Attribute{Name: "c", Kind: attr.Categorical, Domain: []string{"<x&y>"}})
	ds := &attr.Dataset{Schema: schema, Objects: []attr.Object{
		{Loc: geom.Point{X: 1, Y: 1}, Values: []attr.Value{attr.CatValue(0)}},
		{Loc: geom.Point{X: 2, Y: 2}, Values: []attr.Value{attr.CatValue(0)}},
	}}
	var buf bytes.Buffer
	if err := viz.Render(&buf, viz.Map{Dataset: ds, ColorBy: "c", Boxes: []viz.Box{
		{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, Label: "a<b"},
	}}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<x&y>") || strings.Contains(out, "a<b<") {
		t.Fatal("unescaped markup leaked")
	}
	if !strings.Contains(out, "&lt;x&amp;y&gt;") {
		t.Fatal("expected escaped domain value")
	}
}
