package asrs

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"asrs/internal/dssearch"
	"asrs/internal/wal"
)

// EngineOptions configures an Engine.
type EngineOptions struct {
	// IndexGranularity selects the grid granularity g (g×g cells) of the
	// lazily built per-composite indexes used by plain single-region
	// queries. Zero disables indexing: every query runs plain DS-Search.
	IndexGranularity int
	// Search supplies the default search options (grid granularity,
	// Workers, Delta, …) for requests that do not carry their own.
	Search Options
	// BatchParallelism caps the number of requests one QueryBatch call
	// runs concurrently; values <= 0 select runtime.GOMAXPROCS(0).
	BatchParallelism int
	// DisablePyramid turns off the lazily built per-composite aggregate
	// pyramid (the dataset-level SAT hierarchy every query binds instead
	// of rebuilding its aggregation layer; DESIGN.md §6). Answers are
	// bit-identical either way; the switch exists for ablation and as
	// the oracle side of the pyramid property tests.
	DisablePyramid bool
	// DisableBatchGrouping turns off QueryBatch's grouping pass
	// (deduplicating identical requests and sharing one prepared query
	// shape per (composite, a, b) group). Answers are bit-identical
	// either way.
	DisableBatchGrouping bool
	// Ingest configures streaming ingest (Insert/InsertBatch) and its
	// durability; see IngestOptions. The zero value serves a static
	// dataset with memory-only inserts.
	Ingest IngestOptions
}

// QueryRequest is one unit of Engine work.
type QueryRequest struct {
	// Query is the compiled similarity query (see QueryFromRegion /
	// QueryFromTarget).
	Query Query
	// A, B are the answer region's width and height.
	A, B float64
	// TopK requests the k best non-overlapping regions; 0 or 1 returns
	// the single best.
	TopK int
	// Exclude lists rectangles no answer region may overlap (beyond a
	// shared boundary) — typically the example query region.
	Exclude []Rect
	// Within, when non-nil, restricts answer regions to those contained
	// in the closed extent (the shard router's routing primitive; also a
	// first-class query feature). Windowed requests bypass the grid
	// index — the window itself already narrows the search — and surface
	// ErrExtentTooSmall / ErrNoFeasibleRegion as typed request errors.
	Within *Rect
	// Options overrides the engine's default search options for this
	// request when non-nil.
	Options *Options
	// Ctx, when non-nil, bounds this request individually (per-query
	// deadline or cancellation): the search kernel checks it at superstep
	// boundaries and the response's Err becomes context.Canceled /
	// context.DeadlineExceeded. It takes precedence over the batch-level
	// context of QueryBatchCtx, except that a request deduplicated with
	// byte-identical peers executes once under the group's latest member
	// deadline (shared work must not die with one member, nor outlive
	// every member's budget); a member already expired at dispatch, or
	// whose group search itself ended in a context error, is stamped
	// with its own context error.
	Ctx context.Context
}

// QueryResponse is the Engine's answer to one QueryRequest. Regions and
// Results are parallel slices (length 1 unless TopK > 1); Err reports a
// per-request failure without failing the rest of the batch.
type QueryResponse struct {
	Regions []Rect
	Results []Result
	Err     error
}

// Best returns the first (best) region and result of a successful
// response.
func (r QueryResponse) Best() (Rect, Result) {
	if len(r.Regions) == 0 {
		return Rect{}, Result{}
	}
	return r.Regions[0], r.Results[0]
}

// Engine is the serving-layer entry point: it owns a dataset plus lazily
// built, cached per-composite grid indexes, and answers similarity
// queries through safe concurrent Query/QueryBatch calls. The seed
// dataset must not be mutated while the engine serves it; growth goes
// through Insert/InsertBatch, which stage objects for the next epoch
// view. Views, indexes and pyramids are immutable once built, so any
// number of goroutines may query in parallel, each search fanning out
// over its own kernel worker pool (Options.Workers).
type Engine struct {
	ds  *Dataset // seed corpus (immutable)
	opt EngineOptions

	// view is the current epoch: an immutable combined dataset
	// (seed ++ staged inserts) with its per-composite index and pyramid
	// caches. Queries capture one view per request (or per batch) so
	// every binding — dataset, index, pyramid, prepared shape — is
	// coherent. viewMu serializes materialization of new epochs; lock
	// order is viewMu → ingestMu → mu.
	view   atomic.Pointer[engineView]
	viewMu sync.Mutex

	mu    sync.Mutex
	slabs map[*Composite]*dssearch.SlabCache

	// Streaming-ingest state (stream.go). staged grows append-only under
	// ingestMu; stagedLen mirrors its length for lock-free staleness
	// checks in currentView.
	ingestMu     sync.Mutex
	staged       []Object
	wlog         *wal.Log
	lastLSN      uint64 // last acknowledged WAL LSN
	snapCount    int    // staged objects covered by the durable snapshot
	snapLSN      uint64 // the snapshot's applied-LSN watermark
	ingestClosed bool
	stagedLen    atomic.Int64
	compacting   atomic.Bool

	nIngested    atomic.Int64
	nCompactions atomic.Int64
	nCompactErrs atomic.Int64
	nFolds       atomic.Int64

	// Serving counters (atomic; snapshot via Stats). Queries counts every
	// answered request, single or batched.
	nQueries   atomic.Int64
	nBatches   atomic.Int64
	nDedup     atomic.Int64
	nShared    atomic.Int64
	nErrors    atomic.Int64
	nCancelled atomic.Int64

	// lat is the executed-search latency histogram behind the Stats
	// percentiles. One observation per search actually run: batched
	// duplicates ride their canonical's search and are not re-counted.
	lat latencyHist
}

// EngineStats is a point-in-time snapshot of an engine's serving
// counters (see Engine.Stats).
type EngineStats struct {
	// Queries counts answered requests, batched or not.
	Queries int64 `json:"queries"`
	// Batches counts QueryBatch/QueryBatchInto calls.
	Batches int64 `json:"batches"`
	// DedupHits counts batched requests answered by copying a
	// byte-identical peer's response instead of searching.
	DedupHits int64 `json:"dedup_hits"`
	// PreparedShared counts batched requests that rode a group-shared
	// prepared query shape (composite, a, b grouping).
	PreparedShared int64 `json:"prepared_shared"`
	// Errors counts responses delivered with a non-nil Err.
	Errors int64 `json:"errors"`
	// Cancelled counts responses whose Err was a context error
	// (deadline exceeded or cancellation); also included in Errors.
	Cancelled int64 `json:"cancelled"`
	// Indexes and Pyramids count the per-composite caches of the current
	// epoch view.
	Indexes  int `json:"indexes"`
	Pyramids int `json:"pyramids"`
	// Ingested counts objects appended since the seed corpus (including
	// objects recovered from the WAL at boot).
	Ingested int64 `json:"ingested"`
	// Compactions counts completed ingest compactions; CompactionErrors
	// counts background compactions that failed (retried at the next
	// trigger).
	Compactions      int64 `json:"compactions"`
	CompactionErrors int64 `json:"compaction_errors"`
	// PyramidFolds counts epoch pyramids produced by the delta fold
	// (BuildPyramidDelta fast path) rather than a full rebuild.
	PyramidFolds int64 `json:"pyramid_folds"`
	// LatencyCount counts latency observations — one per executed
	// search (batched duplicates ride their canonical's observation) —
	// and the percentiles estimate the executed-search latency
	// distribution from a log₂ histogram (±50% bucket resolution,
	// linearly interpolated).
	LatencyCount int64   `json:"latency_count"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP95Ms float64 `json:"latency_p95_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// Stats snapshots the engine's serving counters. Safe for concurrent
// use; counters are read individually, so a snapshot taken mid-batch may
// be internally skewed by in-flight requests.
func (e *Engine) Stats() EngineStats {
	v := e.view.Load()
	e.mu.Lock()
	ni, np := len(v.indexes), len(v.pyramids)
	e.mu.Unlock()
	lc, p50, p95, p99 := e.lat.summary()
	return EngineStats{
		Queries:          e.nQueries.Load(),
		Batches:          e.nBatches.Load(),
		DedupHits:        e.nDedup.Load(),
		PreparedShared:   e.nShared.Load(),
		Errors:           e.nErrors.Load(),
		Cancelled:        e.nCancelled.Load(),
		Indexes:          ni,
		Pyramids:         np,
		Ingested:         e.nIngested.Load(),
		Compactions:      e.nCompactions.Load(),
		CompactionErrors: e.nCompactErrs.Load(),
		PyramidFolds:     e.nFolds.Load(),
		LatencyCount:     lc,
		LatencyP50Ms:     p50,
		LatencyP95Ms:     p95,
		LatencyP99Ms:     p99,
	}
}

// indexEntry builds its index exactly once, even under concurrent demand
// for the same composite.
type indexEntry struct {
	once sync.Once
	idx  *Index
	err  error
}

// pyramidEntry builds (or adopts) its pyramid exactly once, even under
// concurrent demand for the same composite. done flips after the build
// completes so epoch materialization can harvest finished pyramids as
// delta-fold bases without risking a wait inside once.
type pyramidEntry struct {
	once sync.Once
	p    *Pyramid
	err  error
	base *Pyramid // previous epoch's pyramid (fold base), nil for a fresh build
	done atomic.Bool
}

// engineView is one immutable epoch of the engine's logical dataset:
// the seed corpus plus the first deltaLen ingested objects, with the
// per-composite caches bound to exactly that dataset. The maps are
// guarded by Engine.mu; entries build under their own once. basePyrs
// holds completed pyramids inherited from the previous epoch, consumed
// (and released) by the first delta fold per composite.
type engineView struct {
	ds       *Dataset
	deltaLen int
	indexes  map[*Composite]*indexEntry
	pyramids map[*Composite]*pyramidEntry
	basePyrs map[*Composite]*Pyramid
}

// NewEngine validates the dataset and returns an engine serving it.
// When EngineOptions.Ingest.WALDir is set, it also recovers durable
// ingest state: the ingest snapshot is loaded, the WAL replayed (torn
// tails repaired, gaps refused), and every previously acknowledged
// insert is staged for the first epoch view.
func NewEngine(ds *Dataset, opt EngineOptions) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("asrs: engine requires a dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if opt.IndexGranularity < 0 {
		return nil, fmt.Errorf("asrs: negative index granularity %d", opt.IndexGranularity)
	}
	e := &Engine{
		ds:    ds,
		opt:   opt,
		slabs: make(map[*Composite]*dssearch.SlabCache),
	}
	// Epoch zero IS the seed dataset (same pointer), so pyramids built
	// or loaded for the seed — SetPyramid after a LoadPyramidFile —
	// match it by identity even when recovery staged objects: those fold
	// in at first query, with the seed pyramid as the merge base.
	e.view.Store(&engineView{
		ds:       ds,
		indexes:  make(map[*Composite]*indexEntry),
		pyramids: make(map[*Composite]*pyramidEntry),
		basePyrs: make(map[*Composite]*Pyramid),
	})
	if opt.Ingest.WALDir != "" {
		if err := e.initIngest(); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Dataset returns the seed dataset (treat as read-only). Objects
// ingested since boot are NOT included; see IngestedObjects.
func (e *Engine) Dataset() *Dataset { return e.ds }

// CurrentDataset returns the current logical dataset — the seed corpus
// plus every object ingested so far — as the immutable epoch snapshot
// queries answer against (treat as read-only). Callers compiling
// query-by-example targets should use it rather than Dataset, so the
// example region's representation reflects ingested objects too.
func (e *Engine) CurrentDataset() *Dataset { return e.currentView().ds }

// currentView returns the epoch view covering every insert staged so
// far, materializing a new epoch if inserts arrived since the last one.
func (e *Engine) currentView() *engineView {
	v := e.view.Load()
	if int(e.stagedLen.Load()) == v.deltaLen {
		return v
	}
	return e.materializeView()
}

// materializeView builds the next epoch: a combined dataset (seed ++
// staged), fresh cache maps, and the previous epoch's completed
// pyramids as delta-fold bases. Serialized by viewMu; concurrent
// queries keep the old view until the swap.
func (e *Engine) materializeView() *engineView {
	e.viewMu.Lock()
	defer e.viewMu.Unlock()
	v := e.view.Load()
	e.ingestMu.Lock()
	n := len(e.staged)
	staged := e.staged[:n:n]
	e.ingestMu.Unlock()
	if n == v.deltaLen {
		return v
	}
	objs := make([]Object, 0, len(e.ds.Objects)+n)
	objs = append(objs, e.ds.Objects...)
	objs = append(objs, staged...)
	nv := &engineView{
		ds:       &Dataset{Schema: e.ds.Schema, Objects: objs},
		deltaLen: n,
		indexes:  make(map[*Composite]*indexEntry),
		pyramids: make(map[*Composite]*pyramidEntry),
	}
	// Harvest fold bases: completed pyramids of the previous epoch win
	// (largest prefix), else whatever base it inherited and never used.
	// An in-flight build is simply not harvested — the new epoch
	// rebuilds from scratch for that composite, answers unchanged.
	e.mu.Lock()
	nv.basePyrs = make(map[*Composite]*Pyramid, len(v.pyramids)+len(v.basePyrs))
	for f, p := range v.basePyrs {
		nv.basePyrs[f] = p
	}
	for f, ent := range v.pyramids {
		if ent.done.Load() && ent.err == nil && ent.p != nil {
			nv.basePyrs[f] = ent.p
		}
	}
	e.mu.Unlock()
	e.view.Store(nv)
	return nv
}

// SearchOptions returns the engine's default search options. Callers
// that pin per-request Options (which replace the defaults wholesale)
// should start from this value and override only what they mean to
// change, or settings like the configured worker bound silently revert
// to their zero-value defaults.
func (e *Engine) SearchOptions() Options { return e.opt.Search }

// Index returns the engine's cached grid index for the composite,
// building it on first use. It returns (nil, nil) when indexing is
// disabled. Concurrent callers for the same composite share one build.
//
// The cache is keyed by composite identity (the pointer), not structure:
// two composites with equal specs but different selection functions must
// not share an index, and selectors cannot be fingerprinted (see
// ReadIndex). Treat composites as long-lived singletons — one per query
// shape, compiled once at startup — or the cache rebuilds per call and
// grows without bound.
func (e *Engine) Index(f *Composite) (*Index, error) {
	return e.indexFor(e.currentView(), f)
}

// indexFor returns the view's cached grid index for the composite,
// building it over the view's (combined) dataset on first use.
func (e *Engine) indexFor(v *engineView, f *Composite) (*Index, error) {
	g := e.opt.IndexGranularity
	if g == 0 {
		return nil, nil
	}
	e.mu.Lock()
	ent, ok := v.indexes[f]
	if !ok {
		ent = &indexEntry{}
		v.indexes[f] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		// Sequential build on purpose: NewIndexParallel's shard merge
		// reorders float summation with the worker count, which would
		// make engine answers depend on Options.Workers through last-ulp
		// differences in cell bounds. The build runs once per composite,
		// so determinism wins over build latency here.
		ent.idx, ent.err = NewIndex(v.ds, f, g, g)
	})
	return ent.idx, ent.err
}

// Pyramid returns the engine's cached aggregate pyramid for the
// composite, building it on first use (nil, nil when pyramids are
// disabled). Concurrent callers for the same composite share one build.
// Like Index, the cache is keyed by composite identity — treat
// composites as long-lived singletons.
func (e *Engine) Pyramid(f *Composite) (*Pyramid, error) {
	return e.pyramidFor(e.currentView(), f)
}

// pyramidFor returns the view's cached pyramid for the composite. When
// the view inherited the previous epoch's pyramid for this composite,
// the build is a delta fold (BuildPyramidDelta): only the inserted tail
// is sorted and merged into the base's master order, bit-identical to a
// from-scratch rebuild (which the fold falls back to when its exactness
// gates refuse). The base is released as soon as the build lands.
func (e *Engine) pyramidFor(v *engineView, f *Composite) (*Pyramid, error) {
	if e.opt.DisablePyramid {
		return nil, nil
	}
	e.mu.Lock()
	ent, ok := v.pyramids[f]
	if !ok {
		ent = &pyramidEntry{base: v.basePyrs[f]}
		v.pyramids[f] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		if ent.base != nil {
			p, stats, err := dssearch.BuildPyramidDelta(ent.base, v.ds)
			ent.p, ent.err = p, err
			if err == nil && stats.Folded {
				e.nFolds.Add(1)
			}
			ent.base = nil
			e.mu.Lock()
			delete(v.basePyrs, f)
			e.mu.Unlock()
		} else {
			ent.p, ent.err = dssearch.BuildPyramid(v.ds, f)
		}
		ent.done.Store(true)
	})
	return ent.p, ent.err
}

// SetPyramid installs a prebuilt pyramid (typically loaded from disk
// via ReadPyramid) into the engine's cache, so queries bind it instead
// of triggering a fresh build. The pyramid must have been built for the
// current epoch's dataset and the composite it reports. At boot — even
// after WAL recovery staged objects — the current epoch is the seed
// corpus itself, so a pyramid persisted for the seed installs cleanly
// and later epochs fold the recovered inserts into it.
func (e *Engine) SetPyramid(p *Pyramid) error {
	if p == nil {
		return fmt.Errorf("asrs: nil pyramid")
	}
	v := e.view.Load()
	// The cache key is the pyramid's own composite, so only dataset
	// identity needs verifying here.
	if !p.Matches(v.ds, p.Composite()) {
		return fmt.Errorf("asrs: pyramid was built for a different dataset")
	}
	ent := &pyramidEntry{p: p}
	ent.once.Do(func() {}) // mark built
	ent.done.Store(true)
	e.mu.Lock()
	v.pyramids[p.Composite()] = ent
	e.mu.Unlock()
	return nil
}

// Warm eagerly builds (or finishes building) the engine's cached grid
// index and aggregate pyramid for a composite, so the first real query
// pays neither build. Serving daemons call it per composite at startup —
// typically after SetPyramid installed a pyramid loaded from disk, in
// which case only the index build remains.
func (e *Engine) Warm(f *Composite) error {
	if f == nil {
		return fmt.Errorf("asrs: warm requires a composite")
	}
	v := e.currentView()
	if _, err := e.indexFor(v, f); err != nil {
		return err
	}
	if _, err := e.pyramidFor(v, f); err != nil {
		return err
	}
	return nil
}

// options resolves a request's effective search options and attaches the
// engine's per-composite slab cache, so the per-query search tables
// (sorted coordinate arrays, contribution tables, int64 SAT grids, the
// min/max companion trees, the fixed-point quantization-certificate
// vectors, id arenas) are recycled across queries instead of
// reallocated. The cache is engine-level (it survives epoch changes —
// a recycled tables value retains only capacities, every content is
// rebuilt per query) and keyed by the composite: queries on the same
// composite re-derive their scales into the retained slabs, so reuse is
// safe across concurrent queries and across epochs. The pyramid binding
// comes from the captured view, keeping the dataset and the aggregation
// layer of one query coherent.
func (e *Engine) options(v *engineView, req QueryRequest) Options {
	opt := e.opt.Search
	if req.Options != nil {
		opt = *req.Options
	}
	if opt.Slabs == nil {
		e.mu.Lock()
		sc, ok := e.slabs[req.Query.F]
		if !ok {
			sc = &dssearch.SlabCache{}
			e.slabs[req.Query.F] = sc
		}
		e.mu.Unlock()
		opt.Slabs = sc
	}
	if opt.Pyramid == nil {
		// Bind the persistent per-composite pyramid: every query then
		// aliases the dataset-level aggregation layer instead of
		// rebuilding it (a build failure just means unassisted queries).
		if p, err := e.pyramidFor(v, req.Query.F); err == nil && p != nil {
			opt.Pyramid = p
		}
	}
	return opt
}

// Query answers one request. Plain single-region requests ride the cached
// grid index (GI-DS) when indexing is enabled; TopK and exclusion
// requests use the DS-Search greedy machinery directly. Safe for
// concurrent use.
func (e *Engine) Query(req QueryRequest) QueryResponse {
	return e.QueryCtx(context.Background(), req)
}

// QueryCtx is Query bounded by a context: when ctx (or the request's own
// Ctx, which takes precedence) is cancelled or its deadline passes, the
// search stops cooperatively at the next kernel superstep boundary and
// the response's Err is the context error. Answers of searches that
// complete are bit-identical to an unbounded Query.
func (e *Engine) QueryCtx(ctx context.Context, req QueryRequest) QueryResponse {
	var resp QueryResponse
	e.queryIntoPrep(ctx, e.currentView(), req, &resp, nil)
	e.nQueries.Add(1)
	e.countResponse(&resp)
	return resp
}

// countResponse folds one delivered response into the serving counters.
func (e *Engine) countResponse(resp *QueryResponse) {
	if resp.Err == nil {
		return
	}
	e.nErrors.Add(1)
	if errors.Is(resp.Err, context.Canceled) || errors.Is(resp.Err, context.DeadlineExceeded) {
		e.nCancelled.Add(1)
	}
}

// queryIntoPrep answers one request into resp against the captured
// epoch view v, reusing resp's Regions and Results slice capacity (the
// per-response buffer reuse QueryBatchInto relies on), with an optional
// group-shared prepared query shape (QueryBatchInto's grouping pass
// builds one per overlapping-extent group).
func (e *Engine) queryIntoPrep(ctx context.Context, v *engineView, req QueryRequest, resp *QueryResponse, prep *dssearch.Prepared) {
	start := time.Now()
	defer func() { e.lat.observe(time.Since(start)) }()
	resp.Regions = resp.Regions[:0]
	resp.Results = resp.Results[:0]
	resp.Err = nil
	if req.Ctx != nil {
		ctx = req.Ctx
	}
	if ctx != nil {
		// An already-dead request (deadline passed while it queued in a
		// coalescing window) must not pay index lookup and searcher
		// construction for an answer that is guaranteed to be discarded.
		if cerr := ctx.Err(); cerr != nil {
			resp.Err = cerr
			return
		}
	}
	opt := e.options(v, req)
	if opt.Ctx == nil && ctx != nil {
		opt.Ctx = ctx
	}
	if prep != nil {
		opt.Prepared = prep
	}
	if req.Within != nil {
		// Windowed requests bypass the grid index: the index enumerates
		// whole-corpus cells and knows nothing about extents, while the
		// windowed front door already restricts the search space to the
		// extent's anchor window.
		if req.TopK > 1 {
			regions, results, err := SearchTopKWithin(v.ds, req.A, req.B, req.Query, req.TopK, req.Exclude, *req.Within, opt)
			resp.Regions = append(resp.Regions, regions...)
			resp.Results = append(resp.Results, results...)
			resp.Err = err
			return
		}
		region, res, _, err := SearchWithin(v.ds, req.A, req.B, req.Query, *req.Within, req.Exclude, opt)
		if err != nil {
			resp.Err = err
			return
		}
		resp.Regions = append(resp.Regions, region)
		resp.Results = append(resp.Results, res)
		return
	}
	if req.TopK > 1 || len(req.Exclude) > 0 {
		k := req.TopK
		if k < 1 {
			k = 1
		}
		regions, results, err := SearchTopK(v.ds, req.A, req.B, req.Query, k, req.Exclude, opt)
		resp.Regions = append(resp.Regions, regions...)
		resp.Results = append(resp.Results, results...)
		resp.Err = err
		return
	}
	idx, err := e.indexFor(v, req.Query.F)
	if err != nil {
		resp.Err = err
		return
	}
	var (
		region Rect
		res    Result
	)
	if idx != nil {
		region, res, _, err = SearchWithIndex(idx, v.ds, req.A, req.B, req.Query, opt)
	} else {
		region, res, _, err = Search(v.ds, req.A, req.B, req.Query, opt)
	}
	if err != nil {
		resp.Err = err
		return
	}
	resp.Regions = append(resp.Regions, region)
	resp.Results = append(resp.Results, res)
}

// QueryBatch answers a batch of requests, running up to
// EngineOptions.BatchParallelism of them concurrently. The response slice
// is index-aligned with the requests; per-request failures land in the
// corresponding response's Err.
func (e *Engine) QueryBatch(reqs []QueryRequest) []QueryResponse {
	return e.QueryBatchInto(nil, reqs)
}

// QueryBatchCtx is QueryBatch bounded by a batch-level context (see
// QueryBatchIntoCtx for the per-request deadline semantics).
func (e *Engine) QueryBatchCtx(ctx context.Context, reqs []QueryRequest) []QueryResponse {
	return e.QueryBatchIntoCtx(ctx, nil, reqs)
}

// QueryBatchInto is QueryBatch reusing a caller-provided response
// buffer: the returned slice aliases dst when it has the capacity, and
// each retained response's Regions/Results backing arrays are reused
// too. Serving loops that answer batch after batch hold allocations
// steady by passing the previous batch's slice back in.
//
// Before dispatch the batch goes through a grouping pass (unless
// EngineOptions.DisableBatchGrouping): bitwise-identical requests —
// including TopK and exclusion requests, e.g. repeated query-by-example
// traffic — are answered once and copied, and plain requests sharing a
// (composite, a, b) shape — overlapping extents in the same corpus —
// share one prepared query shape (master rectangles, accuracy, pyramid
// binding) built once per group instead of once per query. Per-request
// answers are bit-identical with grouping on or off.
func (e *Engine) QueryBatchInto(dst []QueryResponse, reqs []QueryRequest) []QueryResponse {
	return e.QueryBatchIntoCtx(context.Background(), dst, reqs)
}

// QueryBatchIntoCtx is QueryBatchInto bounded by a batch-level context.
// Each request additionally honors its own QueryRequest.Ctx (per-query
// deadline), with one dedup subtlety: a group of byte-identical requests
// is answered by a single search that runs under the group's latest
// member deadline — one member's short deadline cannot kill work the
// other members still need, and a group where every member is bounded
// never runs unbounded. Members whose own context has expired by
// delivery time get their context error instead of the shared answer.
func (e *Engine) QueryBatchIntoCtx(ctx context.Context, dst []QueryResponse, reqs []QueryRequest) []QueryResponse {
	if ctx == nil {
		// The dedup-group contexts below derive from ctx and would panic
		// on nil; the single-query path merely tolerates it. Accept nil
		// uniformly across the Ctx entry points.
		ctx = context.Background()
	}
	var out []QueryResponse
	if cap(dst) >= len(reqs) {
		out = dst[:len(reqs)]
	} else {
		out = make([]QueryResponse, len(reqs))
	}
	if len(reqs) == 0 {
		return out
	}
	e.nBatches.Add(1)
	e.nQueries.Add(int64(len(reqs)))
	// One view for the whole batch: every member — deduplicated, shared
	// prepared shape or not — answers against the same epoch, so a batch
	// racing concurrent inserts is internally coherent.
	v := e.currentView()
	var (
		preps  []*dssearch.Prepared
		dupOf  []int
		hasDup []bool
	)
	if !e.opt.DisableBatchGrouping && len(reqs) > 1 {
		preps, dupOf = e.groupBatch(v, reqs)
		for i, c := range dupOf {
			if c >= 0 {
				if hasDup == nil {
					hasDup = make([]bool, len(reqs))
				}
				hasDup[c] = true
				e.nDedup.Add(1)
			}
			if preps[i] != nil {
				e.nShared.Add(1)
			}
		}
	}
	// A canonical with duplicates must not run under any single member's
	// context (one member's short deadline would kill work the others
	// still need), but it must not escape its members' budgets either —
	// on a serving path every member carries a deadline, and hot queries
	// dedup constantly. The shared search therefore runs under the
	// *latest* member deadline when every member has one, and is
	// cancelled outright once every member's own context has fired (all
	// clients gone — nobody is left to receive the answer). Only a
	// member with no context at all makes the group unbounded.
	var groupCtx map[int]context.Context
	if hasDup != nil {
		type group struct {
			members     []context.Context // non-nil member contexts
			unbounded   bool              // some member has no context
			latest      time.Time
			allDeadline bool
		}
		gs := make(map[int]*group, 4)
		add := func(c int, memberCtx context.Context) {
			g := gs[c]
			if g == nil {
				g = &group{allDeadline: true}
				gs[c] = g
			}
			if memberCtx == nil {
				g.unbounded = true
				g.allDeadline = false
				return
			}
			g.members = append(g.members, memberCtx)
			if d, ok := memberCtx.Deadline(); ok {
				if d.After(g.latest) {
					g.latest = d
				}
			} else {
				g.allDeadline = false
			}
		}
		for i := range reqs {
			if hasDup[i] {
				add(i, reqs[i].Ctx)
			}
		}
		for i, c := range dupOf {
			if c >= 0 {
				add(c, reqs[i].Ctx)
			}
		}
		groupCtx = make(map[int]context.Context, len(gs))
		for c, g := range gs {
			parent := ctx
			if g.allDeadline {
				var cancel context.CancelFunc
				parent, cancel = context.WithDeadline(ctx, g.latest)
				defer cancel()
			}
			if g.unbounded {
				groupCtx[c] = parent
				continue
			}
			gc, cancel := context.WithCancel(parent)
			defer cancel()
			var left atomic.Int64
			left.Store(int64(len(g.members)))
			for _, m := range g.members {
				stop := context.AfterFunc(m, func() {
					if left.Add(-1) == 0 {
						cancel()
					}
				})
				defer stop()
			}
			groupCtx[c] = gc
		}
	}
	// Member contexts already dead at entry are noted now: those members
	// get their error (matching queryIntoPrep's solo early-exit), while
	// members whose deadline merely passes later in the batch — after
	// their group's answer was already computed — keep the answer, the
	// batch analogue of the kernel's completed-answer-wins rule.
	var expiredAtEntry []bool
	if hasDup != nil { // only dedup-group members are ever stamped
		expiredAtEntry = make([]bool, len(reqs))
		for i := range reqs {
			expiredAtEntry[i] = reqs[i].Ctx != nil && reqs[i].Ctx.Err() != nil
		}
	}
	prepFor := func(i int) *dssearch.Prepared {
		if preps == nil {
			return nil
		}
		return preps[i]
	}
	canonical := func(i int) bool { return dupOf == nil || dupOf[i] < 0 }
	// dispatch runs canonical request i. A canonical with duplicates is
	// detached from its own per-request context and runs under the dedup
	// group's context instead (see above and the stamping pass in
	// finish).
	dispatch := func(i int, req QueryRequest) {
		if hasDup != nil && hasDup[i] {
			req.Ctx = groupCtx[i] // nil → the batch context
		}
		e.queryIntoPrep(ctx, v, req, &out[i], prepFor(i))
	}
	finish := func() []QueryResponse {
		if dupOf != nil {
			for i, c := range dupOf {
				if c >= 0 {
					copyResponse(&out[i], &out[c])
				}
			}
			// Deadline stamping for dedup groups: their shared search ran
			// under the group context, not any one member's, so each
			// member's own context error is applied here — after the
			// copy, never perturbing a surviving peer — but only when
			// the member was already dead at dispatch or the shared
			// search itself ended in a context error (then every member
			// reports its own error class). A member whose deadline
			// passed while OTHER searches of the batch ran keeps the
			// answer its group computed in time.
			for i := range reqs {
				inGroup := dupOf[i] >= 0 || (hasDup != nil && hasDup[i])
				if !inGroup || reqs[i].Ctx == nil {
					continue
				}
				sharedCtxErr := out[i].Err != nil &&
					(errors.Is(out[i].Err, context.Canceled) || errors.Is(out[i].Err, context.DeadlineExceeded))
				if !expiredAtEntry[i] && !sharedCtxErr {
					continue
				}
				if cerr := reqs[i].Ctx.Err(); cerr != nil {
					out[i].Regions = out[i].Regions[:0]
					out[i].Results = out[i].Results[:0]
					out[i].Err = cerr
				}
			}
		}
		for i := range out {
			e.countResponse(&out[i])
		}
		return out
	}

	// Size the dispatch pool by the number of searches that will actually
	// run: on dedup-heavy serving batches (the coalesced hot path) most
	// requests are duplicates, and splitting the kernel-worker budget by
	// the raw request count would leave most of the machine idle behind
	// a handful of canonical searches.
	work := len(reqs)
	if dupOf != nil {
		work = 0
		for _, c := range dupOf {
			if c < 0 {
				work++
			}
		}
	}
	par := e.opt.BatchParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > work {
		par = work
	}
	if par == 1 {
		for i := range reqs {
			if canonical(i) {
				dispatch(i, reqs[i])
			}
		}
		return finish()
	}
	// Batch- and kernel-level parallelism share one CPU budget: with par
	// queries in flight, letting each default to GOMAXPROCS kernel
	// workers would oversubscribe par-fold. Requests that do not pin
	// their own options get GOMAXPROCS/par workers instead (answers are
	// worker-count independent, so this is purely a scheduling choice).
	perQuery := runtime.GOMAXPROCS(0) / par
	if perQuery < 1 {
		perQuery = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				if !canonical(i) {
					continue
				}
				req := reqs[i]
				if req.Options == nil && e.opt.Search.Workers <= 0 {
					opt := e.opt.Search
					opt.Workers = perQuery
					req.Options = &opt
				}
				dispatch(i, req)
			}
		}()
	}
	wg.Wait()
	return finish()
}

// groupBatch runs the batch grouping pass: it marks duplicate requests
// (dupOf[i] = canonical index, -1 otherwise) and builds one Prepared
// query shape per (composite, a, b) group with at least two distinct
// members. Requests that pin their own Options are left out entirely;
// TopK and exclusion requests participate in dedup — the greedy search
// is just as deterministic, and query-by-example traffic (region +
// exclude-the-example, the serving layer's flagship form) dedups
// constantly — but not in Prepared sharing, which only the plain
// single-region path binds.
func (e *Engine) groupBatch(v *engineView, reqs []QueryRequest) ([]*dssearch.Prepared, []int) {
	preps := make([]*dssearch.Prepared, len(reqs))
	dupOf := make([]int, len(reqs))
	type gkey struct {
		f    *Composite
		a, b float64
	}
	groups := make(map[gkey][]int)
	seen := make(map[string]int)
	var kb strings.Builder
	for i := range reqs {
		dupOf[i] = -1
		req := &reqs[i]
		if req.Options != nil || req.Query.F == nil {
			continue
		}
		kb.Reset()
		dedupKey(&kb, req)
		k := kb.String()
		if j, ok := seen[k]; ok {
			dupOf[i] = j
			continue
		}
		seen[k] = i
		if req.TopK > 1 || len(req.Exclude) > 0 {
			continue // dedup only; no prepared-shape group
		}
		gk := gkey{req.Query.F, req.A, req.B}
		groups[gk] = append(groups[gk], i)
	}
	for gk, idxs := range groups {
		if len(idxs) < 2 {
			continue
		}
		p, err := e.pyramidFor(v, gk.f)
		if err != nil || p == nil {
			continue
		}
		if prep, ok := p.Prepare(gk.a, gk.b); ok {
			for _, i := range idxs {
				preps[i] = prep
			}
		}
	}
	return preps, dupOf
}

// dedupKey writes a byte-exact identity key for a request: composite
// pointer, extent, TopK, norm, target, weights and exclusion
// rectangles. Two requests with equal keys are answered identically by
// the deterministic search, so one execution serves both.
func dedupKey(kb *strings.Builder, req *QueryRequest) {
	// Lengths (with nil marked distinctly from empty) precede the
	// values: a nil weight vector means unit weights while an empty
	// non-nil one is invalid, and the two must never dedup together.
	fmt.Fprintf(kb, "%p|%x|%x|%d|%d|", req.Query.F,
		math.Float64bits(req.A), math.Float64bits(req.B), req.TopK, req.Query.Norm)
	writeVec := func(v []float64) {
		if v == nil {
			kb.WriteString("nil|")
			return
		}
		kb.WriteString(strconv.Itoa(len(v)))
		kb.WriteByte(':')
		for _, x := range v {
			kb.WriteString(strconv.FormatUint(math.Float64bits(x), 16))
			kb.WriteByte(',')
		}
		kb.WriteByte('|')
	}
	writeVec(req.Query.Target)
	writeVec(req.Query.W)
	kb.WriteString(strconv.Itoa(len(req.Exclude)))
	kb.WriteByte(':')
	for _, r := range req.Exclude {
		fmt.Fprintf(kb, "%x,%x,%x,%x;",
			math.Float64bits(r.MinX), math.Float64bits(r.MinY),
			math.Float64bits(r.MaxX), math.Float64bits(r.MaxY))
	}
	// The Within extent changes the answer: a windowed request must
	// never dedup against an unwindowed one (or a differently-windowed
	// one). nil is marked distinctly, like the vectors above.
	if req.Within == nil {
		kb.WriteString("|w:nil")
	} else {
		fmt.Fprintf(kb, "|w:%x,%x,%x,%x",
			math.Float64bits(req.Within.MinX), math.Float64bits(req.Within.MinY),
			math.Float64bits(req.Within.MaxX), math.Float64bits(req.Within.MaxY))
	}
}

// copyResponse deep-copies a canonical response into a duplicate
// request's slot, reusing the destination's backing arrays — including
// each retained result's Rep buffer, so dedup-heavy serving loops hold
// allocations steady batch after batch.
func copyResponse(dst, src *QueryResponse) {
	dst.Regions = append(dst.Regions[:0], src.Regions...)
	n := len(src.Results)
	if cap(dst.Results) >= n {
		dst.Results = dst.Results[:n]
	} else {
		dst.Results = make([]Result, n)
	}
	for i := range src.Results {
		// Read the slot's previous Rep buffer before overwriting the
		// struct; it is slot-owned (earlier copies detached it), never an
		// alias of the canonical's.
		rep := append(dst.Results[i].Rep[:0], src.Results[i].Rep...)
		dst.Results[i] = src.Results[i]
		dst.Results[i].Rep = rep
	}
	dst.Err = src.Err
}
