package asrs

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"asrs/internal/dssearch"
)

// EngineOptions configures an Engine.
type EngineOptions struct {
	// IndexGranularity selects the grid granularity g (g×g cells) of the
	// lazily built per-composite indexes used by plain single-region
	// queries. Zero disables indexing: every query runs plain DS-Search.
	IndexGranularity int
	// Search supplies the default search options (grid granularity,
	// Workers, Delta, …) for requests that do not carry their own.
	Search Options
	// BatchParallelism caps the number of requests one QueryBatch call
	// runs concurrently; values <= 0 select runtime.GOMAXPROCS(0).
	BatchParallelism int
}

// QueryRequest is one unit of Engine work.
type QueryRequest struct {
	// Query is the compiled similarity query (see QueryFromRegion /
	// QueryFromTarget).
	Query Query
	// A, B are the answer region's width and height.
	A, B float64
	// TopK requests the k best non-overlapping regions; 0 or 1 returns
	// the single best.
	TopK int
	// Exclude lists rectangles no answer region may overlap (beyond a
	// shared boundary) — typically the example query region.
	Exclude []Rect
	// Options overrides the engine's default search options for this
	// request when non-nil.
	Options *Options
}

// QueryResponse is the Engine's answer to one QueryRequest. Regions and
// Results are parallel slices (length 1 unless TopK > 1); Err reports a
// per-request failure without failing the rest of the batch.
type QueryResponse struct {
	Regions []Rect
	Results []Result
	Err     error
}

// Best returns the first (best) region and result of a successful
// response.
func (r QueryResponse) Best() (Rect, Result) {
	if len(r.Regions) == 0 {
		return Rect{}, Result{}
	}
	return r.Regions[0], r.Results[0]
}

// Engine is the serving-layer entry point: it owns a dataset plus lazily
// built, cached per-composite grid indexes, and answers similarity
// queries through safe concurrent Query/QueryBatch calls. The dataset
// must not be mutated while the engine serves it; indexes are immutable
// once built, so any number of goroutines may query in parallel, each
// search fanning out over its own kernel worker pool (Options.Workers).
type Engine struct {
	ds  *Dataset
	opt EngineOptions

	mu      sync.Mutex
	indexes map[*Composite]*indexEntry
	slabs   map[*Composite]*dssearch.SlabCache
}

// indexEntry builds its index exactly once, even under concurrent demand
// for the same composite.
type indexEntry struct {
	once sync.Once
	idx  *Index
	err  error
}

// NewEngine validates the dataset and returns an engine serving it.
func NewEngine(ds *Dataset, opt EngineOptions) (*Engine, error) {
	if ds == nil {
		return nil, fmt.Errorf("asrs: engine requires a dataset")
	}
	if err := ds.Validate(); err != nil {
		return nil, err
	}
	if opt.IndexGranularity < 0 {
		return nil, fmt.Errorf("asrs: negative index granularity %d", opt.IndexGranularity)
	}
	return &Engine{
		ds:      ds,
		opt:     opt,
		indexes: make(map[*Composite]*indexEntry),
		slabs:   make(map[*Composite]*dssearch.SlabCache),
	}, nil
}

// Dataset returns the served dataset (treat as read-only).
func (e *Engine) Dataset() *Dataset { return e.ds }

// Index returns the engine's cached grid index for the composite,
// building it on first use. It returns (nil, nil) when indexing is
// disabled. Concurrent callers for the same composite share one build.
//
// The cache is keyed by composite identity (the pointer), not structure:
// two composites with equal specs but different selection functions must
// not share an index, and selectors cannot be fingerprinted (see
// ReadIndex). Treat composites as long-lived singletons — one per query
// shape, compiled once at startup — or the cache rebuilds per call and
// grows without bound.
func (e *Engine) Index(f *Composite) (*Index, error) {
	g := e.opt.IndexGranularity
	if g == 0 {
		return nil, nil
	}
	e.mu.Lock()
	ent, ok := e.indexes[f]
	if !ok {
		ent = &indexEntry{}
		e.indexes[f] = ent
	}
	e.mu.Unlock()
	ent.once.Do(func() {
		// Sequential build on purpose: NewIndexParallel's shard merge
		// reorders float summation with the worker count, which would
		// make engine answers depend on Options.Workers through last-ulp
		// differences in cell bounds. The build runs once per composite,
		// so determinism wins over build latency here.
		ent.idx, ent.err = NewIndex(e.ds, f, g, g)
	})
	return ent.idx, ent.err
}

// options resolves a request's effective search options and attaches the
// engine's per-composite slab cache, so the per-query search tables
// (sorted coordinate arrays, contribution tables, int64 SAT grids, the
// min/max companion trees, the fixed-point quantization-certificate
// vectors, id arenas) are recycled across queries instead of
// reallocated. The cache key is the composite, which also keys the
// certificate: the certificate depends only on the contribution values
// the composite derives from the served (immutable) dataset, so every
// query through one cache re-derives identical scales into the retained
// slabs — reuse is safe across concurrent queries on the same
// composite.
func (e *Engine) options(req QueryRequest) Options {
	opt := e.opt.Search
	if req.Options != nil {
		opt = *req.Options
	}
	if opt.Slabs == nil {
		e.mu.Lock()
		sc, ok := e.slabs[req.Query.F]
		if !ok {
			sc = &dssearch.SlabCache{}
			e.slabs[req.Query.F] = sc
		}
		e.mu.Unlock()
		opt.Slabs = sc
	}
	return opt
}

// Query answers one request. Plain single-region requests ride the cached
// grid index (GI-DS) when indexing is enabled; TopK and exclusion
// requests use the DS-Search greedy machinery directly. Safe for
// concurrent use.
func (e *Engine) Query(req QueryRequest) QueryResponse {
	var resp QueryResponse
	e.queryInto(req, &resp)
	return resp
}

// queryInto answers one request into resp, reusing resp's Regions and
// Results slice capacity (the per-response buffer reuse QueryBatchInto
// relies on).
func (e *Engine) queryInto(req QueryRequest, resp *QueryResponse) {
	resp.Regions = resp.Regions[:0]
	resp.Results = resp.Results[:0]
	resp.Err = nil
	opt := e.options(req)
	if req.TopK > 1 || len(req.Exclude) > 0 {
		k := req.TopK
		if k < 1 {
			k = 1
		}
		regions, results, err := SearchTopK(e.ds, req.A, req.B, req.Query, k, req.Exclude, opt)
		resp.Regions = append(resp.Regions, regions...)
		resp.Results = append(resp.Results, results...)
		resp.Err = err
		return
	}
	idx, err := e.Index(req.Query.F)
	if err != nil {
		resp.Err = err
		return
	}
	var (
		region Rect
		res    Result
	)
	if idx != nil {
		region, res, _, err = SearchWithIndex(idx, e.ds, req.A, req.B, req.Query, opt)
	} else {
		region, res, _, err = Search(e.ds, req.A, req.B, req.Query, opt)
	}
	if err != nil {
		resp.Err = err
		return
	}
	resp.Regions = append(resp.Regions, region)
	resp.Results = append(resp.Results, res)
}

// QueryBatch answers a batch of requests, running up to
// EngineOptions.BatchParallelism of them concurrently. The response slice
// is index-aligned with the requests; per-request failures land in the
// corresponding response's Err.
func (e *Engine) QueryBatch(reqs []QueryRequest) []QueryResponse {
	return e.QueryBatchInto(nil, reqs)
}

// QueryBatchInto is QueryBatch reusing a caller-provided response
// buffer: the returned slice aliases dst when it has the capacity, and
// each retained response's Regions/Results backing arrays are reused
// too. Serving loops that answer batch after batch hold allocations
// steady by passing the previous batch's slice back in.
func (e *Engine) QueryBatchInto(dst []QueryResponse, reqs []QueryRequest) []QueryResponse {
	var out []QueryResponse
	if cap(dst) >= len(reqs) {
		out = dst[:len(reqs)]
	} else {
		out = make([]QueryResponse, len(reqs))
	}
	if len(reqs) == 0 {
		return out
	}
	par := e.opt.BatchParallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > len(reqs) {
		par = len(reqs)
	}
	if par == 1 {
		for i := range reqs {
			e.queryInto(reqs[i], &out[i])
		}
		return out
	}
	// Batch- and kernel-level parallelism share one CPU budget: with par
	// queries in flight, letting each default to GOMAXPROCS kernel
	// workers would oversubscribe par-fold. Requests that do not pin
	// their own options get GOMAXPROCS/par workers instead (answers are
	// worker-count independent, so this is purely a scheduling choice).
	perQuery := runtime.GOMAXPROCS(0) / par
	if perQuery < 1 {
		perQuery = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				req := reqs[i]
				if req.Options == nil && e.opt.Search.Workers <= 0 {
					opt := e.opt.Search
					opt.Workers = perQuery
					req.Options = &opt
				}
				e.queryInto(req, &out[i])
			}
		}()
	}
	wg.Wait()
	return out
}
