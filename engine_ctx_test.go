package asrs_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"asrs"
	"asrs/internal/dataset"
)

// ctxEngine builds an engine over a corpus big enough that a search
// spans many kernel supersteps (so mid-flight cancellation has
// something to interrupt).
func ctxEngine(t *testing.T, opt asrs.EngineOptions) (*asrs.Engine, asrs.QueryRequest) {
	t.Helper()
	ds := dataset.Tweet(20000, 7)
	bounds := ds.Bounds()
	a, b := bounds.Width()/100, bounds.Height()/100
	q, err := dataset.F1(ds, a, b)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := asrs.NewEngine(ds, opt)
	if err != nil {
		t.Fatal(err)
	}
	return eng, asrs.QueryRequest{Query: q, A: a, B: b}
}

// TestQueryCtxExpiredDeadline: a context already past its deadline must
// fail the request with context.DeadlineExceeded without producing a
// region.
func TestQueryCtxExpiredDeadline(t *testing.T) {
	eng, req := ctxEngine(t, asrs.EngineOptions{})
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	resp := eng.QueryCtx(ctx, req)
	if !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("Err = %v, want DeadlineExceeded", resp.Err)
	}
	if len(resp.Regions) != 0 {
		t.Fatalf("cancelled query still returned %d regions", len(resp.Regions))
	}
	st := eng.Stats()
	if st.Cancelled != 1 || st.Errors != 1 || st.Queries != 1 {
		t.Fatalf("stats = %+v, want 1 cancelled/1 error/1 query", st)
	}
}

// TestRequestCtxPrecedence: a per-request Ctx overrides the call-level
// context, in both directions.
func TestRequestCtxPrecedence(t *testing.T) {
	eng, req := ctxEngine(t, asrs.EngineOptions{})
	dead, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	// Live per-request ctx under a dead call ctx: the request runs.
	live := req
	live.Ctx = context.Background()
	if resp := eng.QueryCtx(dead, live); resp.Err != nil {
		t.Fatalf("live request ctx did not override dead call ctx: %v", resp.Err)
	}
	// Dead per-request ctx under a live call ctx: the request fails.
	expired := req
	expired.Ctx = dead
	if resp := eng.Query(expired); !errors.Is(resp.Err, context.DeadlineExceeded) {
		t.Fatalf("dead request ctx ignored: %v", resp.Err)
	}
}

// TestBatchDeadlineIsolation: one request with an expired deadline in a
// batch must come back as DeadlineExceeded while every other answer is
// bit-identical to an unbounded individual Query — a timed-out request
// never perturbs its batch peers.
func TestBatchDeadlineIsolation(t *testing.T) {
	eng, base := ctxEngine(t, asrs.EngineOptions{IndexGranularity: 32})
	dead, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	reqs := make([]asrs.QueryRequest, 5)
	for i := range reqs {
		reqs[i] = base
		// Distinct targets so dedup does not collapse the batch.
		tgt := append([]float64(nil), base.Query.Target...)
		tgt[0] += float64(i)
		reqs[i].Query.Target = tgt
	}
	reqs[2].Ctx = dead

	want := make([]asrs.QueryResponse, len(reqs))
	for i := range reqs {
		if i == 2 {
			continue
		}
		clean := reqs[i]
		clean.Ctx = nil
		want[i] = eng.Query(clean)
		if want[i].Err != nil {
			t.Fatal(want[i].Err)
		}
	}

	resp := eng.QueryBatchCtx(context.Background(), reqs)
	if !errors.Is(resp[2].Err, context.DeadlineExceeded) {
		t.Fatalf("request 2: Err = %v, want DeadlineExceeded", resp[2].Err)
	}
	for i := range resp {
		if i == 2 {
			continue
		}
		if resp[i].Err != nil {
			t.Fatalf("request %d failed: %v", i, resp[i].Err)
		}
		got, ref := resp[i].Results[0].Dist, want[i].Results[0].Dist
		if math.Float64bits(got) != math.Float64bits(ref) {
			t.Fatalf("request %d: batch answer %v != individual answer %v", i, got, ref)
		}
	}
}

// TestBatchDedupSurvivesMemberDeadline: when byte-identical requests
// dedup into one search, an expired member must get its own context
// error while the surviving members still get the real answer (the
// shared search runs under the batch context, not any one member's).
func TestBatchDedupSurvivesMemberDeadline(t *testing.T) {
	eng, base := ctxEngine(t, asrs.EngineOptions{})
	dead, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()

	reqs := []asrs.QueryRequest{base, base, base}
	reqs[1].Ctx = dead // identical bytes, expired deadline

	resp := eng.QueryBatch(reqs)
	if !errors.Is(resp[1].Err, context.DeadlineExceeded) {
		t.Fatalf("expired member: Err = %v, want DeadlineExceeded", resp[1].Err)
	}
	ref := eng.Query(base)
	for _, i := range []int{0, 2} {
		if resp[i].Err != nil {
			t.Fatalf("surviving member %d failed: %v", i, resp[i].Err)
		}
		if math.Float64bits(resp[i].Results[0].Dist) != math.Float64bits(ref.Results[0].Dist) {
			t.Fatalf("surviving member %d: %v != %v", i, resp[i].Results[0].Dist, ref.Results[0].Dist)
		}
	}
	if st := eng.Stats(); st.DedupHits != 2 {
		t.Fatalf("dedup hits = %d, want 2", st.DedupHits)
	}
}

// TestBatchDedupGroupDeadline: when every member of a dedup group
// carries a deadline, the shared search must not escape them — it runs
// under the latest member deadline, so a group of all-short-deadline
// requests aborts instead of computing unbounded.
func TestBatchDedupGroupDeadline(t *testing.T) {
	eng, base := ctxEngine(t, asrs.EngineOptions{})
	c1, cancel1 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel1()
	c2, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()

	reqs := []asrs.QueryRequest{base, base}
	reqs[0].Ctx = c1
	reqs[1].Ctx = c2
	resp := eng.QueryBatch(reqs)
	for i := range resp {
		if !errors.Is(resp[i].Err, context.DeadlineExceeded) {
			t.Fatalf("member %d: Err = %v, want DeadlineExceeded (group must inherit the latest member deadline)", i, resp[i].Err)
		}
	}
}

// TestQueryCtxCancelMidFlight cancels a running search and checks it
// stops promptly with context.Canceled; a later query on the same
// engine still answers correctly (no poisoned caches or leaked state).
func TestQueryCtxCancelMidFlight(t *testing.T) {
	eng, req := ctxEngine(t, asrs.EngineOptions{})
	ref := eng.Query(req)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	var resp asrs.QueryResponse
	go func() {
		defer wg.Done()
		resp = eng.QueryCtx(ctx, req)
	}()
	cancel()
	wg.Wait()
	// The search may legitimately finish before observing the cancel;
	// both outcomes are valid, a wrong answer is not.
	if resp.Err != nil {
		if !errors.Is(resp.Err, context.Canceled) {
			t.Fatalf("Err = %v, want context.Canceled", resp.Err)
		}
	} else if math.Float64bits(resp.Results[0].Dist) != math.Float64bits(ref.Results[0].Dist) {
		t.Fatalf("completed-before-cancel answer differs: %v != %v", resp.Results[0].Dist, ref.Results[0].Dist)
	}

	after := eng.Query(req)
	if after.Err != nil {
		t.Fatal(after.Err)
	}
	if math.Float64bits(after.Results[0].Dist) != math.Float64bits(ref.Results[0].Dist) {
		t.Fatalf("post-cancel answer differs: %v != %v", after.Results[0].Dist, ref.Results[0].Dist)
	}
}
