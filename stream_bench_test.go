// Benchmarks for the streaming substrate: dynamic-index ingest
// throughput, live region queries, and snapshot materialization.
package asrs_test

import (
	"fmt"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

func BenchmarkDynamicInsert(b *testing.B) {
	ds := tweetDS(200000)
	q, _, _ := tweetQuery(b, ds, 10)
	for _, g := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("grid=%d", g), func(b *testing.B) {
			dyn, err := asrs.NewDynamicIndex(q.F, dataset.USBounds(), g, g)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dyn.Insert(&ds.Objects[i%len(ds.Objects)])
			}
		})
	}
}

func BenchmarkDynamicRegionQuery(b *testing.B) {
	ds := tweetDS(100000)
	q, _, _ := tweetQuery(b, ds, 10)
	dyn, err := asrs.NewDynamicIndex(q.F, dataset.USBounds(), 128, 128)
	if err != nil {
		b.Fatal(err)
	}
	dyn.InsertAll(ds.Objects)
	out := make([]float64, q.F.Channels())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dyn.RegionChannels(i%64, 64+i%64, 16, 112, out)
	}
}

func BenchmarkDynamicSnapshot(b *testing.B) {
	ds := tweetDS(100000)
	q, _, _ := tweetQuery(b, ds, 10)
	for _, g := range []int{64, 128} {
		b.Run(fmt.Sprintf("grid=%d", g), func(b *testing.B) {
			dyn, err := asrs.NewDynamicIndex(q.F, dataset.USBounds(), g, g)
			if err != nil {
				b.Fatal(err)
			}
			dyn.InsertAll(ds.Objects)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if dyn.Snapshot() == nil {
					b.Fatal("nil snapshot")
				}
			}
		})
	}
}
