// Failure-injection suite: malformed composites, degenerate datasets, and
// inconsistent queries must produce errors (or correct degenerate
// answers), never panics or silent wrong results.
package asrs_test

import (
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

func validSchema() *asrs.Schema {
	return asrs.MustSchema(
		asrs.Attribute{Name: "cat", Kind: asrs.Categorical, Domain: []string{"a", "b"}},
		asrs.Attribute{Name: "val", Kind: asrs.Numeric},
	)
}

func TestMalformedComposites(t *testing.T) {
	s := validSchema()
	cases := []struct {
		name  string
		specs []asrs.AggSpec
	}{
		{"empty", nil},
		{"unknown attr", []asrs.AggSpec{{Kind: asrs.Distribution, Attr: "ghost"}}},
		{"fD on numeric", []asrs.AggSpec{{Kind: asrs.Distribution, Attr: "val"}}},
		{"fA on categorical", []asrs.AggSpec{{Kind: asrs.Average, Attr: "cat"}}},
		{"fS on categorical", []asrs.AggSpec{{Kind: asrs.Sum, Attr: "cat"}}},
		{"mixed bad", []asrs.AggSpec{{Kind: asrs.Distribution, Attr: "cat"}, {Kind: asrs.Sum, Attr: "cat"}}},
	}
	for _, c := range cases {
		if _, err := asrs.NewComposite(s, c.specs...); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestDegenerateDatasets(t *testing.T) {
	s := validSchema()
	f, err := asrs.NewComposite(s, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	if err != nil {
		t.Fatal(err)
	}
	q, err := asrs.QueryFromTarget(f, []float64{0, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("empty dataset", func(t *testing.T) {
		ds := &asrs.Dataset{Schema: s}
		region, res, _, err := asrs.Search(ds, 1, 1, q, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist != 0 {
			t.Fatalf("empty dataset with zero target: dist %g", res.Dist)
		}
		if region.Width() != 1 || region.Height() != 1 {
			t.Fatalf("region size %v", region)
		}
	})

	t.Run("single object", func(t *testing.T) {
		ds := &asrs.Dataset{Schema: s, Objects: []asrs.Object{
			{Loc: asrs.Point{X: 5, Y: 5}, Values: []asrs.Value{{Cat: 1}, {Num: 2}}},
		}}
		q2, _ := asrs.QueryFromTarget(f, []float64{0, 1}, nil)
		_, res, _, err := asrs.Search(ds, 2, 2, q2, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist != 0 {
			t.Fatalf("should find the single b-object exactly, dist %g", res.Dist)
		}
	})

	t.Run("all coincident", func(t *testing.T) {
		objs := make([]asrs.Object, 9)
		for i := range objs {
			objs[i] = asrs.Object{Loc: asrs.Point{X: 1, Y: 1}, Values: []asrs.Value{{Cat: 0}, {Num: 1}}}
		}
		ds := &asrs.Dataset{Schema: s, Objects: objs}
		q3, _ := asrs.QueryFromTarget(f, []float64{9, 0}, nil)
		_, res, _, err := asrs.Search(ds, 3, 3, q3, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist != 0 {
			t.Fatalf("coincident cluster should match target exactly, dist %g", res.Dist)
		}
	})

	t.Run("collinear", func(t *testing.T) {
		objs := make([]asrs.Object, 12)
		for i := range objs {
			objs[i] = asrs.Object{Loc: asrs.Point{X: float64(i), Y: 7}, Values: []asrs.Value{{Cat: 0}, {Num: 1}}}
		}
		ds := &asrs.Dataset{Schema: s, Objects: objs}
		q4, _ := asrs.QueryFromTarget(f, []float64{3, 0}, nil)
		_, res, _, err := asrs.Search(ds, 2.5, 2.5, q4, asrs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Dist != 0 {
			t.Fatalf("a 2.5-wide window over unit-spaced collinear points holds exactly 3... got dist %g (rep %v)", res.Dist, res.Rep)
		}
	})
}

func TestInconsistentQueries(t *testing.T) {
	s := validSchema()
	f, _ := asrs.NewComposite(s, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	ds := &asrs.Dataset{Schema: s, Objects: []asrs.Object{
		{Loc: asrs.Point{X: 1, Y: 1}, Values: []asrs.Value{{Cat: 0}, {Num: 0}}},
	}}

	if _, err := asrs.QueryFromTarget(f, []float64{1}, nil); err == nil {
		t.Error("short target accepted")
	}
	if _, err := asrs.QueryFromTarget(f, []float64{1, 2}, []float64{1}); err == nil {
		t.Error("short weights accepted")
	}
	q, _ := asrs.QueryFromTarget(f, []float64{1, 1}, nil)
	if _, _, _, err := asrs.Search(ds, 0, 5, q, asrs.Options{}); err == nil {
		t.Error("zero-width query accepted")
	}
	if _, _, _, err := asrs.Search(ds, 5, -1, q, asrs.Options{}); err == nil {
		t.Error("negative-height query accepted")
	}
	if _, _, _, err := asrs.Search(ds, 1, 1, q, asrs.Options{Delta: -0.5}); err == nil {
		t.Error("negative delta accepted")
	}
	if _, _, err := asrs.SearchTopK(ds, 1, 1, q, -2, nil, asrs.Options{}); err == nil {
		t.Error("negative k accepted")
	}
}

func TestQueryRegionOutsideData(t *testing.T) {
	ds := dataset.Random(40, 50, 200)
	f, _ := asrs.NewComposite(ds.Schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "cat"})
	// An example region far outside the data has the all-zero
	// representation; the best answer is any empty region (distance 0).
	q, err := asrs.QueryFromRegion(ds, f, nil, asrs.Rect{MinX: 900, MinY: 900, MaxX: 910, MaxY: 910})
	if err != nil {
		t.Fatal(err)
	}
	_, res, _, err := asrs.Search(ds, 10, 10, q, asrs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist != 0 {
		t.Fatalf("empty-region query should be satisfiable with distance 0, got %g", res.Dist)
	}
}
