// Weekend hotspot: the paper's Composite Aggregator 1 (§7.1). Over a
// corpus of geo-tagged tweets, find the region whose activity is most
// concentrated on weekends — the aggregate target is
// (0,0,0,0,0,T6,T7) with weekday weights 1/5 and weekend weights 1/2.
//
// The example compares the exact DS-Search answer with the grid-index
// accelerated GI-DS and the (1+δ)-approximate app-GIDS, reporting the
// work each performed.
package main

import (
	"fmt"
	"log"
	"time"

	"asrs"
	"asrs/internal/dataset"
)

func main() {
	const n = 200000
	ds := dataset.Tweet(n, 42)
	bounds := ds.Bounds()
	a, b := 10*bounds.Width()/1000, 10*bounds.Height()/1000

	q, err := dataset.F1(ds, a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d synthetic geo-tweets over the U.S. extent\n", n)
	fmt.Printf("query:  %.3g x %.3g region maximizing weekend concentration\n\n", a, b)

	// Exact DS-Search.
	start := time.Now()
	region, res, stats, err := asrs.Search(ds, a, b, q, asrs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("DS-Search (exact)", region, res, time.Since(start))
	fmt.Printf("  %d discretizations, %d splits, %d cells pruned\n\n",
		stats.Discretizations, stats.Splits, stats.PrunedCells)

	// GI-DS: build the index once, reuse for queries sharing F1.
	start = time.Now()
	idx, err := asrs.NewIndex(ds, q.F, 128, 128)
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	start = time.Now()
	region2, res2, istats, err := asrs.SearchWithIndex(idx, ds, a, b, q, asrs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report("GI-DS (exact, indexed)", region2, res2, time.Since(start))
	fmt.Printf("  index built in %v; %d of %d cells searched\n\n",
		buildTime.Round(time.Millisecond), istats.CellsSearched, istats.Cells)

	// app-GIDS with δ = 0.2.
	start = time.Now()
	region3, res3, _, err := asrs.SearchWithIndex(idx, ds, a, b, q, asrs.Options{Delta: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	report("app-GIDS (δ=0.2)", region3, res3, time.Since(start))
	if res.Dist > 0 {
		fmt.Printf("  approximation quality d_app/d_opt = %.4f (guarantee ≤ %.1f)\n",
			res3.Dist/res.Dist, 1.2)
	}
}

func report(label string, region asrs.Rect, res asrs.Result, elapsed time.Duration) {
	weekday := res.Rep[0] + res.Rep[1] + res.Rep[2] + res.Rep[3] + res.Rep[4]
	weekend := res.Rep[5] + res.Rep[6]
	fmt.Printf("%s: %v in %v\n", label, region, elapsed.Round(time.Millisecond))
	fmt.Printf("  weekend tweets=%.0f weekday tweets=%.0f (distance %.2f)\n",
		weekend, weekday, res.Dist)
}
