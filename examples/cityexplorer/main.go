// City explorer: the paper's §7.6 case study as an application. A tourist
// who enjoyed the "Orchard" district asks for the most similar other
// region in the city; DS-Search discovers "Marina Bay", and the category
// profile explains why "Bugis" — superficially similar in food and
// transport — is not the answer.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"asrs"
	"asrs/internal/dataset"
	"asrs/internal/viz"
)

func main() {
	svgPath := flag.String("svg", "", "also write a Fig 14(a)-style map to this SVG file")
	flag.Parse()
	ds := dataset.SingaporePOI(42)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
	if err != nil {
		log.Fatal(err)
	}

	districts := dataset.SingaporeDistricts()
	orchard := districts[0]
	bugis := districts[2]

	// Query by example: the region the tourist liked.
	q, err := asrs.QueryFromRegion(ds, f, nil, orchard.Rect)
	if err != nil {
		log.Fatal(err)
	}

	// Search for the most similar region of the same size, excluding the
	// example itself (it would trivially match with distance 0).
	region, res, _, err := asrs.SearchExcluding(ds,
		orchard.Rect.Width(), orchard.Rect.Height(), q, orchard.Rect, asrs.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("you liked:            %s %v\n", orchard.Name, orchard.Rect)
	fmt.Printf("you might also like:  %v (distance %.0f)\n", region, res.Dist)
	for _, d := range districts[1:] {
		if region.Intersects(d.Rect) {
			fmt.Printf("                      → that's %q\n", d.Name)
		}
	}

	// Why: the category profiles (the stacked bars of Fig 14(b)).
	bugisRep := asrs.Represent(ds, f, bugis.Rect)
	fmt.Printf("\n%-24s %8s %8s %8s\n", "category", "Orchard", "answer", "Bugis")
	for i, cat := range dataset.POICategories {
		fmt.Printf("%-24s %8.0f %8.0f %8.0f\n", cat, q.Target[i], res.Rep[i], bugisRep[i])
	}
	fmt.Printf("\ndist(Orchard→answer) = %.0f, dist(Orchard→Bugis) = %.0f\n",
		res.Dist, asrs.Distance(asrs.L1, q.Target, bugisRep, nil))

	if *svgPath != "" {
		out, err := os.Create(*svgPath)
		if err != nil {
			log.Fatal(err)
		}
		defer out.Close()
		err = viz.Render(out, viz.Map{
			Dataset: ds,
			ColorBy: "category",
			WidthPx: 1200,
			Boxes: []viz.Box{
				{Rect: orchard.Rect, Label: "Orchard (query)", Color: "#d62728"},
				{Rect: region, Label: "answer", Color: "#111111"},
				{Rect: bugis.Rect, Label: "Bugis", Color: "#1f77b4"},
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nmap written to %s\n", *svgPath)
	}
}
