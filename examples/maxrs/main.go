// MaxRS: the §7.5 application. Place a fixed-size rectangle to enclose the
// maximum number of points — here, siting a new store where the most
// potential customers live. Compares the DS-Search adaptation with the
// Optimal Enclosure (OE) sweep baseline; both must agree on the optimum.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"asrs"
)

func main() {
	// Customers: three gaussian population centers plus uniform scatter.
	rng := rand.New(rand.NewSource(3))
	centers := []struct {
		x, y float64
		n    int
	}{
		{25, 25, 4000}, {70, 60, 6000}, {40, 80, 3000},
	}
	var pts []asrs.MaxRSPoint
	for _, c := range centers {
		for i := 0; i < c.n; i++ {
			pts = append(pts, asrs.MaxRSPoint{
				Loc:    asrs.Point{X: c.x + rng.NormFloat64()*6, Y: c.y + rng.NormFloat64()*6},
				Weight: 1,
			})
		}
	}
	for i := 0; i < 7000; i++ {
		pts = append(pts, asrs.MaxRSPoint{
			Loc:    asrs.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100},
			Weight: 1,
		})
	}
	fmt.Printf("customers: %d, store catchment: 10 x 10\n\n", len(pts))

	start := time.Now()
	oe, err := asrs.MaxRSBaseline(pts, 10, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OE sweep:   region %v encloses %.0f customers (%v)\n",
		oe.Region, oe.Weight, time.Since(start).Round(time.Millisecond))

	start = time.Now()
	ds, stats, err := asrs.MaxRS(pts, 10, 10, asrs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("DS-Search:  region %v encloses %.0f customers (%v)\n",
		ds.Region, ds.Weight, time.Since(start).Round(time.Millisecond))
	fmt.Printf("            %d discretizations, %d cells pruned\n",
		stats.Discretizations, stats.PrunedCells)

	if oe.Weight != ds.Weight {
		log.Fatalf("algorithms disagree: OE %.0f vs DS %.0f", oe.Weight, ds.Weight)
	}
	fmt.Println("\nboth algorithms agree on the optimum ✓")
}
