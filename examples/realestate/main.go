// Real estate: the paper's Example 1. An apartment hunter wants a
// neighborhood with a restaurant, a supermarket and a bus stop (but not
// too many of each — a noisy area is undesirable), an average sales price
// within budget, and everything within walking distance.
//
// The example builds a city with several neighborhood archetypes, encodes
// the wish list as a composite aggregator target, and lets DS-Search find
// the neighborhood. It then re-runs the query with a different budget to
// show how the weight vector steers the answer.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"asrs"
)

const (
	catApartment = iota
	catSupermarket
	catRestaurant
	catBusStop
)

var categories = []string{"Apartment", "Supermarket", "Restaurant", "Bus stop"}

// neighborhood seeds one archetype around a center.
type neighborhood struct {
	name         string
	cx, cy       float64
	apartments   int
	amenities    int     // of each amenity kind
	price        float64 // mean apartment price (hundreds of k$)
	priceSpread  float64
	amenityNoise int // extra amenities (the "noisy area" failure mode)
}

func main() {
	rng := rand.New(rand.NewSource(7))
	schema := asrs.MustSchema(
		asrs.Attribute{Name: "category", Kind: asrs.Categorical, Domain: categories},
		asrs.Attribute{Name: "price", Kind: asrs.Numeric},
	)

	hoods := []neighborhood{
		{name: "quiet & affordable", cx: 15, cy: 15, apartments: 8, amenities: 1, price: 3.0, priceSpread: 0.3},
		{name: "quiet & pricey", cx: 70, cy: 20, apartments: 8, amenities: 1, price: 9.0, priceSpread: 0.5},
		{name: "noisy downtown", cx: 25, cy: 75, apartments: 10, amenities: 6, price: 4.0, priceSpread: 1.0, amenityNoise: 12},
		{name: "no amenities", cx: 80, cy: 80, apartments: 9, amenities: 0, price: 2.5, priceSpread: 0.4},
	}

	var objects []asrs.Object
	place := func(cx, cy float64, cat int, price float64) {
		objects = append(objects, asrs.Object{
			Loc: asrs.Point{
				X: cx + rng.NormFloat64()*1.5,
				Y: cy + rng.NormFloat64()*1.5,
			},
			Values: []asrs.Value{{Cat: cat}, {Num: price}},
		})
	}
	for _, h := range hoods {
		for i := 0; i < h.apartments; i++ {
			place(h.cx, h.cy, catApartment, h.price+rng.NormFloat64()*h.priceSpread)
		}
		for _, amenity := range []int{catSupermarket, catRestaurant, catBusStop} {
			for i := 0; i < h.amenities; i++ {
				place(h.cx, h.cy, amenity, 0)
			}
			for i := 0; i < h.amenityNoise/3; i++ {
				place(h.cx, h.cy, amenity, 0)
			}
		}
	}
	// Background scatter.
	for i := 0; i < 150; i++ {
		place(rng.Float64()*100, rng.Float64()*100, rng.Intn(4), 3+rng.Float64()*5)
	}
	ds := &asrs.Dataset{Schema: schema, Objects: objects}
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}

	// Aspects: category mix (fD) and the average apartment price (fA over
	// a selection of apartments only — the γ_apt of Example 2).
	f, err := asrs.NewComposite(schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Average, Attr: "price", Select: asrs.SelectCategory(0, catApartment)},
	)
	if err != nil {
		log.Fatal(err)
	}

	search := func(label string, budget float64) {
		// Wish list: ~8 apartments, exactly one of each amenity, average
		// price near the budget. Big weights on the amenity counts mean
		// "must have, but few"; the price dimension is scaled so that
		// being 1 (hundred k$) off matches one missing amenity.
		target := []float64{8, 1, 1, 1, budget}
		weights := []float64{0.2, 1, 1, 1, 1}
		q, err := asrs.QueryFromTarget(f, target, weights)
		if err != nil {
			log.Fatal(err)
		}
		region, res, _, err := asrs.Search(ds, 8, 8, q, asrs.Options{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (budget %.1f):\n", label, budget)
		fmt.Printf("  region %v\n", region)
		fmt.Printf("  apartments=%.0f supermarkets=%.0f restaurants=%.0f bus stops=%.0f avg price=%.2f (distance %.2f)\n",
			res.Rep[0], res.Rep[1], res.Rep[2], res.Rep[3], res.Rep[4], res.Dist)
		for _, h := range hoods {
			if region.ContainsClosed(asrs.Point{X: h.cx, Y: h.cy}) {
				fmt.Printf("  → that's the %q neighborhood\n", h.name)
			}
		}
	}

	search("modest budget", 3.0)
	search("generous budget", 9.0)
}
