// Engine: the serving-layer facade. One Engine owns a dataset plus
// lazily built, cached per-composite grid indexes and answers batches of
// similarity queries concurrently — the entry point a server would wrap.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"asrs"
)

func main() {
	// A synthetic city: 20,000 POIs with a category attribute.
	schema := asrs.MustSchema(
		asrs.Attribute{Name: "category", Kind: asrs.Categorical,
			Domain: []string{"cafe", "gym", "school"}},
	)
	rng := rand.New(rand.NewSource(7))
	objects := make([]asrs.Object, 0, 20000)
	for i := 0; i < 20000; i++ {
		objects = append(objects, asrs.Object{
			Loc:    asrs.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000},
			Values: []asrs.Value{{Cat: rng.Intn(3)}},
		})
	}
	ds := &asrs.Dataset{Schema: schema, Objects: objects}

	f, err := asrs.NewComposite(schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
	if err != nil {
		log.Fatal(err)
	}

	// The engine builds a 64×64 grid index for f on first use and serves
	// every subsequent query from it; searches fan out over the kernel
	// worker pool.
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{
		IndexGranularity: 64,
		Search:           asrs.Options{Workers: 0}, // 0 = GOMAXPROCS
	})
	if err != nil {
		log.Fatal(err)
	}

	// A batch of queries sharing the cached index: different target
	// category mixes, one top-k request.
	var reqs []asrs.QueryRequest
	for _, target := range [][]float64{
		{20, 2, 2}, {2, 20, 2}, {2, 2, 20}, {8, 8, 8},
	} {
		q, err := asrs.QueryFromTarget(f, target, nil)
		if err != nil {
			log.Fatal(err)
		}
		reqs = append(reqs, asrs.QueryRequest{Query: q, A: 40, B: 40})
	}
	topQ, _ := asrs.QueryFromTarget(f, []float64{25, 0, 0}, nil)
	reqs = append(reqs, asrs.QueryRequest{Query: topQ, A: 40, B: 40, TopK: 3})

	start := time.Now()
	resps := eng.QueryBatch(reqs)
	elapsed := time.Since(start)

	for i, resp := range resps {
		if resp.Err != nil {
			log.Fatalf("request %d: %v", i, resp.Err)
		}
		for j := range resp.Regions {
			fmt.Printf("request %d answer %d: %v  dist=%.2f  rep=%.0f\n",
				i, j, resp.Regions[j], resp.Results[j].Dist, resp.Results[j].Rep)
		}
	}
	fmt.Printf("batch of %d answered in %v (index built lazily on first use)\n",
		len(reqs), elapsed.Round(time.Millisecond))

	// Engine.Stats carries serving-side observability: dedup hits within
	// batches, and the per-executed-search latency distribution (p50/p95/
	// p99) the asrsd /stats endpoint exposes.
	st := eng.Stats()
	fmt.Printf("engine stats: %d searches, dedup hits %d, latency p50=%.2fms p95=%.2fms p99=%.2fms\n",
		st.LatencyCount, st.DedupHits, st.LatencyP50Ms, st.LatencyP95Ms, st.LatencyP99Ms)
}
