// Quickstart: the smallest end-to-end ASRS query, using only the public
// API. We build a toy city of POIs, describe the aspects we care about
// with a composite aggregator, and ask for the region most similar to a
// hand-crafted target.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"asrs"
)

func main() {
	debug := flag.Bool("debug", false, "print search work counters, including the mini-sweep strip-evaluator selection")
	flag.Parse()
	// A schema with one categorical and one numeric attribute.
	schema := asrs.MustSchema(
		asrs.Attribute{Name: "category", Kind: asrs.Categorical,
			Domain: []string{"cafe", "gym", "school"}},
		asrs.Attribute{Name: "rating", Kind: asrs.Numeric},
	)

	// A synthetic city: 2,000 POIs in a 100×100 area, with a cafe-dense
	// quarter around (20, 20).
	rng := rand.New(rand.NewSource(1))
	objects := make([]asrs.Object, 0, 2000)
	for i := 0; i < 2000; i++ {
		x, y := rng.Float64()*100, rng.Float64()*100
		cat := rng.Intn(3)
		if x < 30 && y < 30 && rng.Float64() < 0.7 {
			cat = 0 // cafes cluster in the south-west quarter
		}
		objects = append(objects, asrs.Object{
			Loc:    asrs.Point{X: x, Y: y},
			Values: []asrs.Value{{Cat: cat}, {Num: 2 + 8*rng.Float64()}},
		})
	}
	ds := &asrs.Dataset{Schema: schema, Objects: objects}
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}

	// Aspects of interest: the category mix, and the average rating.
	f, err := asrs.NewComposite(schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Average, Attr: "rating"},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Target: a 10×10 region with ~15 cafes, few gyms/schools, and a high
	// average rating. Weights de-emphasize the rating dimension.
	q, err := asrs.QueryFromTarget(f,
		[]float64{15, 2, 2, 9.0},
		[]float64{1, 1, 1, 0.5},
	)
	if err != nil {
		log.Fatal(err)
	}

	region, res, stats, err := asrs.Search(ds, 10, 10, q, asrs.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("most similar region: %v\n", region)
	fmt.Printf("representation:      cafes=%.0f gyms=%.0f schools=%.0f avg-rating=%.2f\n",
		res.Rep[0], res.Rep[1], res.Rep[2], res.Rep[3])
	fmt.Printf("distance to target:  %.3f\n", res.Dist)
	fmt.Printf("search effort:       %d discretizations, %d cells pruned\n",
		stats.Discretizations, stats.PrunedCells)
	if *debug {
		// The safety-net mini-sweeps pick a strip evaluator per dirty
		// strip — a flat prefix scan for dense strips, Fenwick tree walks
		// for sparse ones. The choice is a measured-cost decision and
		// never changes the answer (DESIGN.md §8).
		fmt.Printf("mini-sweeps:         %d over %d rects; strips: %d flat, %d fenwick\n",
			stats.MiniSweeps, stats.MiniSweepRects, stats.FlatStrips, stats.FenwickStrips)
	}
}
