// Stream monitor: continuous similar-region search over an arriving
// geo-stream — the paper's motivating setting (§1: "increasingly massive
// volumes of geo-tagged data are becoming available"). Tweets arrive in
// batches through Engine.InsertBatch; each batch advances the engine's
// epoch view, and the weekend-hotspot query (Composite Aggregator 1) is
// re-run against the delta-folded pyramid — O(delta) ingest instead of
// a restart. After every tick the answer is checked bit-for-bit against
// a from-scratch engine over the same prefix: the standing invariant
// that the fold-in path is exact, not approximate.
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	"asrs"
	"asrs/internal/dataset"
)

func main() {
	const (
		total     = 120000
		batchSize = 30000
	)
	// Seed 43 draws a stream with no exactly co-located tweets: the delta
	// fold's unique-anchor gate certifies every tick, so the monitor
	// showcases the O(delta) path. (A corpus with location ties would be
	// just as correct — ties fall back to a bit-identical full rebuild.)
	full := dataset.Tweet(total, 43)
	bounds := dataset.USBounds()
	a, b := 10*bounds.Width()/1000, 10*bounds.Height()/1000

	// The composite aggregator is fixed up front; the target is re-tuned
	// per tick since "maximum weekend tweets a region can hold" grows
	// with the stream.
	probe, err := dataset.F1(full, a, b)
	if err != nil {
		log.Fatal(err)
	}
	f := probe.F

	// Seed the engine with the first batch; the rest arrives as inserts.
	seed := &asrs.Dataset{Schema: full.Schema, Objects: full.Objects[:batchSize]}
	eng, err := asrs.NewEngine(seed, asrs.EngineOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitoring weekend hotspots over a %d-tweet stream (batches of %d)\n\n", total, batchSize)
	for seen := batchSize; seen <= total; seen += batchSize {
		var ingestTime time.Duration
		if seen > batchSize {
			ingest := time.Now()
			if err := eng.InsertBatch(full.Objects[seen-batchSize : seen]); err != nil {
				log.Fatal(err)
			}
			ingestTime = time.Since(ingest)
		}
		prefix := &asrs.Dataset{Schema: full.Schema, Objects: full.Objects[:seen]}

		q, err := dataset.F1(prefix, a, b)
		if err != nil {
			log.Fatal(err)
		}
		q.F = f // share the engine's composite (same structure, re-tuned target)
		req := asrs.QueryRequest{Query: q, A: a, B: b}
		solve := time.Now()
		resp := eng.Query(req)
		if resp.Err != nil {
			log.Fatal(resp.Err)
		}
		solveTime := time.Since(solve)
		res := resp.Results[0]

		// Rebuild-match assertion: a fresh engine over the same prefix
		// must produce the identical answer — delta fold-in is exact.
		rebuilt, err := asrs.NewEngine(prefix, asrs.EngineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		ref := rebuilt.Query(req)
		if ref.Err != nil {
			log.Fatal(ref.Err)
		}
		if math.Float64bits(res.Dist) != math.Float64bits(ref.Results[0].Dist) ||
			resp.Regions[0] != ref.Regions[0] {
			log.Fatalf("after %d tweets: streamed answer %v @ %v diverges from rebuild %v @ %v",
				seen, res.Dist, resp.Regions[0], ref.Results[0].Dist, ref.Regions[0])
		}

		weekend := res.Rep[5] + res.Rep[6]
		weekday := res.Rep[0] + res.Rep[1] + res.Rep[2] + res.Rep[3] + res.Rep[4]
		fmt.Printf("after %6d tweets: hotspot %v\n", seen, resp.Regions[0])
		fmt.Printf("    weekend=%4.0f weekday=%4.0f  (ingest %v, solve %v, matches rebuild)\n",
			weekend, weekday, ingestTime.Round(time.Millisecond), solveTime.Round(time.Millisecond))
	}
	if st := eng.Stats(); st.PyramidFolds == 0 {
		log.Fatal("expected at least one delta pyramid fold")
	} else {
		fmt.Printf("\n%d inserts ingested, %d delta folds, every tick bit-identical to a rebuild\n",
			st.Ingested, st.PyramidFolds)
	}
}
