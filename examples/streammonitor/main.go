// Stream monitor: continuous similar-region search over an arriving
// geo-stream — the paper's motivating setting (§1: "increasingly massive
// volumes of geo-tagged data are becoming available"). Tweets arrive in
// batches; after each batch the monitor snapshots the dynamic index and
// re-runs the weekend-hotspot query (Composite Aggregator 1), printing
// how the best region and its weekend concentration evolve.
package main

import (
	"fmt"
	"log"
	"time"

	"asrs"
	"asrs/internal/dataset"
)

func main() {
	const (
		total     = 120000
		batchSize = 30000
	)
	full := dataset.Tweet(total, 42)
	bounds := dataset.USBounds()
	a, b := 10*bounds.Width()/1000, 10*bounds.Height()/1000

	// The composite aggregator is fixed up front; the target is re-tuned
	// per snapshot since "maximum weekend tweets a region can hold" grows
	// with the stream.
	probe, err := dataset.F1(full, a, b)
	if err != nil {
		log.Fatal(err)
	}
	f := probe.F

	dyn, err := asrs.NewDynamicIndex(f, bounds, 128, 128)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("monitoring weekend hotspots over a %d-tweet stream (batches of %d)\n\n", total, batchSize)
	seen := &asrs.Dataset{Schema: full.Schema}
	for start := 0; start < total; start += batchSize {
		batch := full.Objects[start : start+batchSize]
		ingest := time.Now()
		dyn.InsertAll(batch)
		ingestTime := time.Since(ingest)
		seen.Objects = full.Objects[:start+batchSize]

		q, err := dataset.F1(seen, a, b)
		if err != nil {
			log.Fatal(err)
		}
		q.F = f // share the index's composite (same structure, re-tuned target)
		snap := dyn.Snapshot()
		solve := time.Now()
		region, res, stats, err := asrs.SearchWithIndex(snap, seen, a, b, q, asrs.Options{})
		if err != nil {
			log.Fatal(err)
		}
		weekend := res.Rep[5] + res.Rep[6]
		weekday := res.Rep[0] + res.Rep[1] + res.Rep[2] + res.Rep[3] + res.Rep[4]
		fmt.Printf("after %6d tweets: hotspot %v\n", start+batchSize, region)
		fmt.Printf("    weekend=%4.0f weekday=%4.0f  (ingest %v, solve %v, %d/%d cells searched)\n",
			weekend, weekday, ingestTime.Round(time.Millisecond), time.Since(solve).Round(time.Millisecond),
			stats.CellsSearched, stats.Cells)
	}
}
