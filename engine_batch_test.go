package asrs_test

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"asrs"
	"asrs/internal/dataset"
)

// batchFixture builds a Singapore-flavored dataset, a composite, and a
// set of overlapping query-by-example requests (the serving shape the
// batch grouping pass targets).
func batchFixture(t *testing.T, nQueries int, seed int64) (*asrs.Dataset, *asrs.Composite, []asrs.QueryRequest) {
	t.Helper()
	ds := dataset.SingaporePOI(seed)
	f, err := asrs.NewComposite(ds.Schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Count},
	)
	if err != nil {
		t.Fatal(err)
	}
	bounds := ds.Bounds()
	a := bounds.Width() / 14
	b := bounds.Height() / 14
	rng := rand.New(rand.NewSource(seed))
	reqs := make([]asrs.QueryRequest, nQueries)
	for i := range reqs {
		// Overlapping extents around the center of the corpus.
		cx := bounds.MinX + bounds.Width()*(0.35+0.3*rng.Float64())
		cy := bounds.MinY + bounds.Height()*(0.35+0.3*rng.Float64())
		rq := asrs.Rect{MinX: cx, MinY: cy, MaxX: cx + a, MaxY: cy + b}
		q, err := asrs.QueryFromRegion(ds, f, nil, rq)
		if err != nil {
			t.Fatal(err)
		}
		reqs[i] = asrs.QueryRequest{Query: q, A: a, B: b, Exclude: []asrs.Rect{rq}}
		if i%2 == 0 {
			// Half the batch is plain (groupable); the excluded half rides
			// the TopK machinery and must coexist untouched.
			reqs[i].Exclude = nil
		}
		if i > 0 && i%5 == 0 {
			reqs[i] = reqs[i-1] // exact duplicates exercise the dedup pass
		}
	}
	return ds, f, reqs
}

// respKey flattens a response for comparison.
func respEqual(t *testing.T, tag string, i int, a, b asrs.QueryResponse) {
	t.Helper()
	if (a.Err == nil) != (b.Err == nil) || len(a.Regions) != len(b.Regions) {
		t.Fatalf("%s: response %d shape differs: %+v vs %+v", tag, i, a, b)
	}
	for k := range a.Regions {
		if a.Regions[k] != b.Regions[k] {
			t.Fatalf("%s: response %d region %d: %v != %v", tag, i, k, a.Regions[k], b.Regions[k])
		}
		if a.Results[k].Dist != b.Results[k].Dist || a.Results[k].Point != b.Results[k].Point {
			t.Fatalf("%s: response %d result %d: %v@%v != %v@%v", tag, i, k,
				a.Results[k].Dist, a.Results[k].Point, b.Results[k].Dist, b.Results[k].Point)
		}
		for j := range a.Results[k].Rep {
			if math.Float64bits(a.Results[k].Rep[j]) != math.Float64bits(b.Results[k].Rep[j]) {
				t.Fatalf("%s: response %d rep[%d] differs", tag, i, j)
			}
		}
	}
}

// TestBatchGroupingDeterminism: per-request answers are bit-identical
// across (a) grouping on/off, (b) pyramid on/off, (c) batch parallelism
// and kernel worker counts — the acceptance contract of the batched
// serving path.
func TestBatchGroupingDeterminism(t *testing.T) {
	ds, _, reqs := batchFixture(t, 14, 21)
	configs := []struct {
		tag string
		opt asrs.EngineOptions
	}{
		{"baseline", asrs.EngineOptions{BatchParallelism: 1, DisablePyramid: true, DisableBatchGrouping: true, Search: asrs.Options{Workers: 1}}},
		{"pyramid", asrs.EngineOptions{BatchParallelism: 1, DisableBatchGrouping: true, Search: asrs.Options{Workers: 1}}},
		{"grouped", asrs.EngineOptions{BatchParallelism: 1, Search: asrs.Options{Workers: 1}}},
		{"grouped-par", asrs.EngineOptions{BatchParallelism: 4, Search: asrs.Options{Workers: 1}}},
		{"grouped-workers", asrs.EngineOptions{BatchParallelism: 2, Search: asrs.Options{Workers: 3}}},
	}
	var want []asrs.QueryResponse
	for ci, cfg := range configs {
		eng, err := asrs.NewEngine(ds, cfg.opt)
		if err != nil {
			t.Fatal(err)
		}
		got := eng.QueryBatch(reqs)
		for i := range got {
			if got[i].Err != nil {
				t.Fatalf("%s: request %d failed: %v", cfg.tag, i, got[i].Err)
			}
		}
		if ci == 0 {
			want = got
			continue
		}
		for i := range got {
			respEqual(t, cfg.tag, i, got[i], want[i])
		}
	}
}

// TestBatchGroupingMatchesSingleQueries: a grouped batch answers every
// request exactly as the same engine answers it alone.
func TestBatchGroupingMatchesSingleQueries(t *testing.T) {
	ds, _, reqs := batchFixture(t, 10, 33)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{BatchParallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := eng.QueryBatch(reqs)
	for i := range reqs {
		single := eng.Query(reqs[i])
		respEqual(t, "single-vs-batch", i, batch[i], single)
	}
}

// TestEnginePyramidRoundTripServing: a pyramid serialized, reloaded and
// installed with SetPyramid serves bit-identical answers to the
// engine-built one.
func TestEnginePyramidRoundTripServing(t *testing.T) {
	ds, f, reqs := batchFixture(t, 6, 44)
	built, err := asrs.BuildPyramid(ds, f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := asrs.WritePyramid(&buf, built); err != nil {
		t.Fatal(err)
	}
	loaded, err := asrs.ReadPyramid(&buf, ds, f)
	if err != nil {
		t.Fatal(err)
	}
	engBuilt, err := asrs.NewEngine(ds, asrs.EngineOptions{BatchParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	engLoaded, err := asrs.NewEngine(ds, asrs.EngineOptions{BatchParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := engLoaded.SetPyramid(loaded); err != nil {
		t.Fatal(err)
	}
	a := engBuilt.QueryBatch(reqs)
	b := engLoaded.QueryBatch(reqs)
	for i := range a {
		respEqual(t, "loaded-pyramid", i, a[i], b[i])
	}
}

// TestBatchSteadyStateAllocs is the alloc-regression assertion of the
// batch path: once the engine is warm (pyramid built, slabs populated),
// answering a whole batch through QueryBatchInto must stay under a
// small per-query allocation budget — the per-worker scratch is reused
// across the queries of a batch instead of re-acquired.
func TestBatchSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting under -short")
	}
	ds, _, reqs := batchFixture(t, 8, 55)
	eng, err := asrs.NewEngine(ds, asrs.EngineOptions{BatchParallelism: 1, Search: asrs.Options{Workers: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var resp []asrs.QueryResponse
	resp = eng.QueryBatchInto(resp, reqs) // warm: builds pyramid, slabs, scratch
	resp = eng.QueryBatchInto(resp, reqs)
	allocs := testing.AllocsPerRun(5, func() {
		resp = eng.QueryBatchInto(resp, reqs)
	})
	perQuery := allocs / float64(len(reqs))
	// The budget is deliberately loose (kernel heap growth, response Rep
	// detaches and TopK paths legitimately allocate) — the assertion
	// exists to catch order-of-magnitude regressions like re-building
	// per-worker scratch for every query of a batch.
	if perQuery > 2000 {
		t.Fatalf("steady-state batch allocations: %.0f allocs/query (budget 2000)", perQuery)
	}
	t.Logf("steady-state batch: %.0f allocs/query", perQuery)
}
