package asrs_test

import (
	"fmt"

	"asrs"
)

// demoDataset builds a small deterministic city for the godoc examples:
// a cafe cluster near (10, 10) and scattered gyms.
func demoDataset() (*asrs.Dataset, *asrs.Composite) {
	schema := asrs.MustSchema(
		asrs.Attribute{Name: "category", Kind: asrs.Categorical, Domain: []string{"cafe", "gym"}},
		asrs.Attribute{Name: "rating", Kind: asrs.Numeric},
	)
	obj := func(x, y float64, cat int, rating float64) asrs.Object {
		return asrs.Object{Loc: asrs.Point{X: x, Y: y},
			Values: []asrs.Value{{Cat: cat}, {Num: rating}}}
	}
	ds := &asrs.Dataset{Schema: schema, Objects: []asrs.Object{
		obj(10, 10, 0, 4.5), obj(10.8, 10.2, 0, 4.0), obj(10.4, 11.0, 0, 5.0),
		obj(30, 30, 1, 3.0), obj(34, 31, 1, 2.5),
		obj(50, 12, 0, 3.5),
	}}
	f, _ := asrs.NewComposite(schema,
		asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"},
		asrs.AggSpec{Kind: asrs.Average, Attr: "rating"},
	)
	return ds, f
}

// ExampleSearch finds the region most similar to a hand-crafted target:
// three cafes, no gyms, high ratings.
func ExampleSearch() {
	ds, f := demoDataset()
	q, _ := asrs.QueryFromTarget(f, []float64{3, 0, 4.5}, nil)
	_, res, _, _ := asrs.Search(ds, 2, 2, q, asrs.Options{})
	fmt.Printf("cafes=%.0f gyms=%.0f avg=%.1f dist=%.1f\n",
		res.Rep[0], res.Rep[1], res.Rep[2], res.Dist)
	// Output: cafes=3 gyms=0 avg=4.5 dist=0.0
}

// ExampleQueryFromRegion shows query-by-example: describe the aspects,
// point at a region you like, and search elsewhere.
func ExampleQueryFromRegion() {
	ds, f := demoDataset()
	example := asrs.Rect{MinX: 9.5, MinY: 9.5, MaxX: 11.5, MaxY: 11.5}
	q, _ := asrs.QueryFromRegion(ds, f, nil, example)
	fmt.Printf("target: cafes=%.0f gyms=%.0f avg=%.1f\n", q.Target[0], q.Target[1], q.Target[2])
	// Output: target: cafes=3 gyms=0 avg=4.5
}

// ExampleRepresent computes the aggregate representation of a region
// directly.
func ExampleRepresent() {
	ds, f := demoDataset()
	rep := asrs.Represent(ds, f, asrs.Rect{MinX: 25, MinY: 25, MaxX: 40, MaxY: 40})
	fmt.Printf("cafes=%.0f gyms=%.0f avg=%.2f\n", rep[0], rep[1], rep[2])
	// Output: cafes=0 gyms=2 avg=2.75
}

// ExampleMaxRSBaseline sites a 3×3 region enclosing the most points.
func ExampleMaxRSBaseline() {
	ds, _ := demoDataset()
	pts := make([]asrs.MaxRSPoint, len(ds.Objects))
	for i, o := range ds.Objects {
		pts[i] = asrs.MaxRSPoint{Loc: o.Loc, Weight: 1}
	}
	res, _ := asrs.MaxRSBaseline(pts, 3, 3)
	fmt.Printf("max enclosed: %.0f\n", res.Weight)
	// Output: max enclosed: 3
}

// ExampleDistance compares two representations under the weighted L1
// norm (the paper's Example 4 numbers).
func ExampleDistance() {
	rq := []float64{2, 1, 1, 1, 1.75}
	r1 := []float64{3, 1, 1, 1, 1.6}
	fmt.Printf("%.2f\n", asrs.Distance(asrs.L1, rq, r1, nil))
	// Output: 1.15
}
