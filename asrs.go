// Package asrs is a Go implementation of attribute-aware similar region
// search, reproducing "Finding Attribute-aware Similar Regions for Data
// Analysis" (Feng, Cong, Jensen, Guo; PVLDB 12(11), 2019).
//
// Given a set of spatial objects with attributes, a composite aggregator
// describing the aspects of interest, and an a×b query region (or a
// hand-crafted target representation), the library finds the a×b region
// whose aggregate representation is closest to the query's under a
// weighted L1 (or L2) distance.
//
// The package exposes:
//
//   - the attribute model (Schema, Object, Dataset) and composite
//     aggregators (fD, fA, fS over selections),
//   - Search: the exact DS-Search algorithm (the paper's contribution),
//   - SearchApprox via Options.Delta: the (1+δ)-approximate variant,
//   - NewIndex / SearchWithIndex: the grid-index-accelerated GI-DS,
//   - SearchBaseline: the O(n²) sweep-line baseline,
//   - MaxRS / MaxRSBaseline: the MaxRS adaptation and the OE sweep,
//   - Engine: the serving-layer facade — one dataset, lazily built cached
//     per-composite indexes, safe concurrent Query/QueryBatch.
//
// # Concurrent search kernel
//
// Every search front door (Search, SearchWithIndex, MaxRS, …) runs on the
// shared best-first kernel of internal/kernel: a worker pool
// (Options.Workers; values <= 0 select GOMAXPROCS) pulls candidate spaces
// from a min-heap in fixed-size deterministic batches, processes them
// concurrently, and publishes improved incumbents through an atomic
// shared pruning bound merged at batch barriers under a total order
// (distance, then point). Because every structural decision depends only
// on deterministic state, the answer — region, point and distance — is
// bit-identical for every Workers setting and goroutine schedule, so the
// paper's exactness theorems and the (1+δ) guarantee carry over
// unchanged. Rectangle subsets travel the heap as compact id slices
// recycled through per-worker arenas, discretization scratch and
// mini-sweep solvers are batch-built per worker, and large spaces are
// discretized from a query-level summed-area table instead of rebuilt
// difference arrays, so steady-state searches allocate almost nothing
// per space. See DESIGN.md §2 and §4 for the full protocol.
//
// Quick start:
//
//	schema := asrs.MustSchema(
//		asrs.Attribute{Name: "category", Kind: asrs.Categorical, Domain: []string{"cafe", "gym"}},
//	)
//	ds := &asrs.Dataset{Schema: schema, Objects: objects}
//	f, _ := asrs.NewComposite(schema, asrs.AggSpec{Kind: asrs.Distribution, Attr: "category"})
//	q, _ := asrs.QueryFromRegion(ds, f, nil, queryRegion)
//	region, res, _, _ := asrs.Search(ds, 0.01, 0.01, q, asrs.Options{})
package asrs

import (
	"errors"
	"fmt"
	"io"
	"io/fs"

	"asrs/internal/agg"
	"asrs/internal/asp"
	"asrs/internal/attr"
	"asrs/internal/dssearch"
	"asrs/internal/geom"
	"asrs/internal/gridindex"
	"asrs/internal/maxrs"
	"asrs/internal/persist"
	"asrs/internal/sweep"
)

// Geometry.
type (
	// Point is a planar location.
	Point = geom.Point
	// Rect is an axis-parallel rectangle.
	Rect = geom.Rect
	// Accuracy holds the GPS horizontal/vertical accuracies (Definition 7)
	// used by DS-Search's drop condition.
	Accuracy = geom.Accuracy
)

// Attribute model.
type (
	// Schema is an ordered set of attributes.
	Schema = attr.Schema
	// Attribute describes one attribute (categorical or numeric).
	Attribute = attr.Attribute
	// Value is one attribute value of an object.
	Value = attr.Value
	// Object is a spatial object: location plus attribute values.
	Object = attr.Object
	// Dataset couples a schema with its objects.
	Dataset = attr.Dataset
	// Selector is the selection function γ that filters objects before
	// aggregation.
	Selector = attr.Selector
)

// AttrKind distinguishes categorical from numeric attributes.
type AttrKind = attr.Kind

// Attribute kinds.
const (
	Categorical = attr.Categorical
	Numeric     = attr.Numeric
)

// Aggregation.
type (
	// Composite is a compiled composite aggregator F.
	Composite = agg.Composite
	// AggSpec is one (f, A, γ) component of a composite aggregator.
	AggSpec = agg.Spec
	// Norm selects L1 or L2 distance.
	Norm = agg.Norm
)

// Aggregator kinds (Definition 1).
const (
	// Distribution is fD: per-value counts of a categorical attribute.
	Distribution = agg.Distribution
	// Average is fA: mean of a numeric attribute (0 on empty selections).
	Average = agg.Average
	// Sum is fS: sum of a numeric attribute.
	Sum = agg.Sum
	// Count is fC: the number of selected objects (extension; Attr may be
	// empty).
	Count = agg.Count
)

// Distance norms.
const (
	L1 = agg.L1
	L2 = agg.L2
)

// Query and search.
type (
	// Query is a fully specified similarity query: composite aggregator,
	// target representation F(r_q), per-dimension weights, and norm.
	Query = asp.Query
	// Result is an answer: the best point (region bottom-left under the
	// default reduction), its distance, and its representation.
	Result = asp.Result
	// Options configures DS-Search (grid granularity, approximation δ,
	// accuracy override, reduction anchor).
	Options = dssearch.Options
	// SearchStats reports the work DS-Search performed.
	SearchStats = dssearch.Stats
	// Index is a grid index over a dataset for one composite aggregator.
	Index = gridindex.Index
	// Pyramid is the persistent per-composite aggregate pyramid: the
	// dataset-level aggregation layer (canonical master order, channel
	// contributions, exactness certificates, hierarchical summed-area
	// tables and the min/max companion) built once per (dataset,
	// composite) and bound by every query instead of rebuilt (DESIGN.md
	// §6). Engines build and cache one per composite automatically.
	Pyramid = dssearch.Pyramid
	// IndexStats reports the work of one GI-DS run.
	IndexStats = gridindex.Stats
	// DynamicIndex is an append-only grid index over a live object
	// stream; Snapshot() materializes a queryable Index.
	DynamicIndex = gridindex.Dynamic
)

// MaxRS types.
type (
	// MaxRSPoint is a weighted point for the MaxRS problem.
	MaxRSPoint = maxrs.Point
	// MaxRSResult is a MaxRS answer.
	MaxRSResult = maxrs.Result
)

// NewSchema builds a schema; see attr.NewSchema.
func NewSchema(attrs ...Attribute) (*Schema, error) { return attr.NewSchema(attrs...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(attrs ...Attribute) *Schema { return attr.MustSchema(attrs...) }

// NewComposite compiles a composite aggregator against a schema,
// validating that fD components reference categorical attributes and
// fA/fS components numeric ones.
func NewComposite(schema *Schema, specs ...AggSpec) (*Composite, error) {
	return agg.New(schema, specs...)
}

// SelectAll is the γ_all selection function.
func SelectAll(o *Object) bool { return attr.SelectAll(o) }

// SelectCategory returns a selector keeping objects whose categorical
// attribute (by schema position) equals the given domain index.
func SelectCategory(attrIdx, valueIdx int) Selector { return attr.SelectCategory(attrIdx, valueIdx) }

// SelectNumRange returns a selector keeping objects whose numeric
// attribute lies in [lo, hi].
func SelectNumRange(attrIdx int, lo, hi float64) Selector {
	return attr.SelectNumRange(attrIdx, lo, hi)
}

// Represent computes the aggregate representation F(r) of the objects
// strictly inside region r.
func Represent(ds *Dataset, f *Composite, r Rect) []float64 {
	return f.Representation(ds, agg.OpenRect{MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY})
}

// QueryFromRegion builds a query-by-example: the target representation is
// computed from the example region rq (which also fixes the query size
// a×b = rq.Width()×rq.Height()). A nil weight vector means unit weights.
func QueryFromRegion(ds *Dataset, f *Composite, w []float64, rq Rect) (Query, error) {
	q := Query{F: f, Target: Represent(ds, f, rq), W: w}
	return q, q.Validate()
}

// QueryFromTarget builds a query from a hand-crafted target representation
// (the "virtual region" usage of §3.3).
func QueryFromTarget(f *Composite, target, w []float64) (Query, error) {
	q := Query{F: f, Target: target, W: w}
	return q, q.Validate()
}

// Search solves the ASRS problem exactly with DS-Search: it returns the
// a×b region minimizing the distance to the query target, the answer
// details, and search statistics. Options.Delta > 0 switches to the
// (1+δ)-approximate algorithm.
func Search(ds *Dataset, a, b float64, q Query, opt Options) (Rect, Result, SearchStats, error) {
	return dssearch.SolveASRS(ds, a, b, q, opt)
}

// SearchExcluding is Search restricted to answer regions that do not
// overlap the exclude rectangle (beyond a shared boundary). Use it for
// query-by-example with a real query region, which would otherwise be its
// own zero-distance answer.
func SearchExcluding(ds *Dataset, a, b float64, q Query, exclude Rect, opt Options) (Rect, Result, SearchStats, error) {
	return dssearch.SolveASRSExcluding(ds, a, b, q, exclude, opt)
}

// SearchTopK returns up to k non-overlapping similar regions in
// increasing distance order (greedy: best, then best avoiding the first,
// and so on). The exclude rectangles — typically the example region —
// are avoided by every answer. An extension beyond the paper.
func SearchTopK(ds *Dataset, a, b float64, q Query, k int, exclude []Rect, opt Options) ([]Rect, []Result, error) {
	return dssearch.SolveASRSTopK(ds, a, b, q, k, exclude, opt)
}

// Typed windowed-search errors, surfaced by SearchWithin and the shard
// router: an extent too small to hold an a×b region, and an extent whose
// every feasible region is excluded.
var (
	ErrExtentTooSmall   = dssearch.ErrExtentTooSmall
	ErrNoFeasibleRegion = dssearch.ErrNoFeasibleRegion
)

// SearchWithin is Search restricted to answer regions contained in the
// closed extent `within`, additionally avoiding the exclude rectangles.
// The search trajectory depends only on the extent and the objects
// whose anchor rectangles can reach it — never on the rest of the
// corpus — which is what lets the shard router answer extent-contained
// queries from a single shard bit-identically to a merged-corpus run
// (DESIGN.md §11).
func SearchWithin(ds *Dataset, a, b float64, q Query, within Rect, exclude []Rect, opt Options) (Rect, Result, SearchStats, error) {
	return dssearch.SolveASRSWithin(ds, a, b, q, within, exclude, opt)
}

// SearchTopKWithin is SearchTopK restricted to regions contained in the
// extent; rounds stop early once no feasible region remains.
func SearchTopKWithin(ds *Dataset, a, b float64, q Query, k int, exclude []Rect, within Rect, opt Options) ([]Rect, []Result, error) {
	return dssearch.SolveASRSTopKWithin(ds, a, b, q, k, exclude, within, opt)
}

// SearchBaseline solves the ASRS problem with the O(n²) sweep-line
// baseline ("Base" in the paper's experiments). Intended for validation
// and benchmarking.
func SearchBaseline(ds *Dataset, a, b float64, q Query) (Rect, Result, error) {
	rects, err := asp.Reduce(ds, a, b, asp.AnchorTR)
	if err != nil {
		return Rect{}, Result{}, err
	}
	s, err := sweep.New(rects, q)
	if err != nil {
		return Rect{}, Result{}, err
	}
	res := s.Solve()
	return asp.AnchorTR.RegionFor(res.Point, a, b), res, nil
}

// NewIndex builds a grid index with granularity sx×sy over the dataset for
// the composite aggregator f (§5). The index is reusable across queries
// that share f.
func NewIndex(ds *Dataset, f *Composite, sx, sy int) (*Index, error) {
	return gridindex.New(ds, f, sx, sy)
}

// BuildPyramid constructs the persistent aggregate pyramid for one
// composite over a dataset (DESIGN.md §6). Engines build pyramids
// lazily on their own; use this (with WritePyramid/ReadPyramid) to
// build one offline and ship it to query services.
func BuildPyramid(ds *Dataset, f *Composite) (*Pyramid, error) {
	return dssearch.BuildPyramid(ds, f)
}

// NewIndexParallel is NewIndex with a parallel binning pass (workers <= 0
// selects GOMAXPROCS-many). Summaries are identical up to floating-point
// summation order.
func NewIndexParallel(ds *Dataset, f *Composite, sx, sy, workers int) (*Index, error) {
	return gridindex.NewParallel(ds, f, sx, sy, workers)
}

// NewDynamicIndex creates an empty append-only index over a declared
// extent for streaming workloads: Insert objects as they arrive
// (O(log² grid) each), query live region aggregates with RegionChannels,
// and Snapshot() an immutable Index for SearchWithIndex bursts.
func NewDynamicIndex(f *Composite, bounds Rect, sx, sy int) (*DynamicIndex, error) {
	return gridindex.NewDynamic(f, bounds, sx, sy)
}

// SearchWithIndex solves the ASRS problem with GI-DS (Algorithm 2): index
// cells are lower-bounded and searched best-first by DS-Search.
// Options.Delta > 0 selects app-GIDS.
func SearchWithIndex(idx *Index, ds *Dataset, a, b float64, q Query, opt Options) (Rect, Result, IndexStats, error) {
	rects, err := dssearch.ReduceForSearch(ds, a, b, q.F, opt)
	if err != nil {
		return Rect{}, Result{}, IndexStats{}, err
	}
	res, stats, err := gridindex.Solve(idx, rects, q, a, b, opt)
	if err != nil {
		return Rect{}, Result{}, stats, err
	}
	return asp.AnchorTR.RegionFor(res.Point, a, b), res, stats, nil
}

// MaxRS solves the maximizing-range-sum problem with the DS-Search
// adaptation of §7.5: place an a×b region to maximize the enclosed weight.
func MaxRS(points []MaxRSPoint, a, b float64, opt Options) (MaxRSResult, SearchStats, error) {
	return maxrs.DS(points, a, b, opt)
}

// MaxRSBaseline solves MaxRS with the Optimal Enclosure sweep
// (O(n log n)), the state-of-the-art baseline the paper compares against.
func MaxRSBaseline(points []MaxRSPoint, a, b float64) (MaxRSResult, error) {
	return maxrs.OE(points, a, b)
}

// WriteDatasetCSV serializes a dataset in the library's self-describing
// CSV dialect (schema directives in comments, then standard CSV rows).
func WriteDatasetCSV(w io.Writer, ds *Dataset) error { return persist.WriteCSV(w, ds) }

// ReadDatasetCSV parses a dataset written by WriteDatasetCSV or
// hand-authored in the same dialect.
func ReadDatasetCSV(r io.Reader) (*Dataset, error) { return persist.ReadCSV(r) }

// WriteIndex serializes a grid index to a compact binary format; load it
// back with ReadIndex. Returns the byte count written.
func WriteIndex(w io.Writer, idx *Index) (int64, error) { return idx.WriteTo(w) }

// ReadIndex loads an index written by WriteIndex, re-binding it to the
// composite aggregator it was built with. The composite's structure is
// verified via fingerprint; its selection functions cannot be verified,
// so treat the composite definition as part of the index's identity.
func ReadIndex(r io.Reader, f *Composite) (*Index, error) { return gridindex.Read(r, f) }

// WritePyramid serializes an aggregate pyramid to a compact
// checksummed binary format; load it back with ReadPyramid. Returns the
// byte count written.
func WritePyramid(w io.Writer, p *Pyramid) (int64, error) { return persist.WritePyramid(w, p) }

// ReadPyramid loads a pyramid written by WritePyramid, re-binding it to
// the dataset and composite it was built with (fingerprint- and
// checksum-verified; corrupt or mismatched files error out cleanly).
// Install it into an Engine with Engine.SetPyramid. Like ReadIndex, the
// dataset identity and the composite's selection functions are part of
// the file's contract.
func ReadPyramid(r io.Reader, ds *Dataset, f *Composite) (*Pyramid, error) {
	return persist.ReadPyramid(r, ds, f)
}

// ErrPyramidCorrupt and ErrPyramidMismatch classify pyramid-file
// failures (re-exported from internal/persist): corrupt means the
// bytes are damaged — torn write, truncation, checksum failure — and
// the artifact is rebuildable; mismatch means the file decodes but was
// built for a different composite or dataset, a deployment error that
// rebuilding would hide. LoadOrBuildPyramidFile quarantines and
// rebuilds on the former and hard-fails on the latter.
var (
	ErrPyramidCorrupt  = persist.ErrCorrupt
	ErrPyramidMismatch = persist.ErrMismatch
)

// PyramidLoad reports how LoadOrBuildPyramidFile obtained its pyramid.
type PyramidLoad int

const (
	// PyramidLoaded: the on-disk file verified and loaded.
	PyramidLoaded PyramidLoad = iota
	// PyramidBuilt: no file existed; built fresh and saved.
	PyramidBuilt
	// PyramidRebuilt: the file was corrupt; it was quarantined
	// (timestamped .corrupt-* sibling) and the pyramid rebuilt and
	// re-saved.
	PyramidRebuilt
)

func (s PyramidLoad) String() string {
	switch s {
	case PyramidLoaded:
		return "loaded"
	case PyramidBuilt:
		return "built"
	case PyramidRebuilt:
		return "rebuilt"
	}
	return fmt.Sprintf("PyramidLoad(%d)", int(s))
}

// SavePyramidFile atomically persists a pyramid: temp file + fsync +
// rename, plus a checksummed sidecar manifest. A crash at any instant
// leaves either the old complete file or the new complete file at
// path — never a torn one.
func SavePyramidFile(path string, p *Pyramid) error { return persist.SavePyramid(path, p) }

// LoadPyramidFile reads a pyramid saved by SavePyramidFile (or by
// LoadOrBuildPyramidFile). Damaged files error with ErrPyramidCorrupt,
// wrong-identity files with ErrPyramidMismatch; a missing file reports
// fs.ErrNotExist.
func LoadPyramidFile(path string, ds *Dataset, f *Composite) (*Pyramid, error) {
	return persist.LoadPyramid(path, ds, f)
}

// LoadOrBuildPyramidFile binds the on-disk pyramid for (ds, f):
//
//   - the file exists and verifies → (pyramid, PyramidLoaded, nil);
//   - no file → build, save atomically, (pyramid, PyramidBuilt, nil);
//   - the file is corrupt (torn write, bit rot, truncation) → move it
//     aside to a timestamped .corrupt-* sibling, rebuild, re-save,
//     (pyramid, PyramidRebuilt, nil). The damaged bytes are preserved
//     for postmortem and the process comes up healthy;
//   - the file decodes but belongs to a different dataset/composite →
//     (nil, 0, error wrapping ErrPyramidMismatch). That is a stale or
//     misrouted artifact; rebuilding silently would hide the
//     deployment error, so it stays fatal.
//
// status lets callers log build latency versus a warm load and alert
// on rebuilds. Both CLI front ends (asrsquery -pyramid, asrsd
// -pyramid) ride this helper.
func LoadOrBuildPyramidFile(path string, ds *Dataset, f *Composite) (p *Pyramid, status PyramidLoad, err error) {
	p, err = persist.LoadPyramid(path, ds, f)
	switch {
	case err == nil:
		return p, PyramidLoaded, nil
	case errors.Is(err, persist.ErrCorrupt):
		qpath, qerr := persist.Quarantine(path)
		if qerr != nil {
			return nil, 0, fmt.Errorf("asrs: pyramid %s corrupt and unquarantinable: %w", path, qerr)
		}
		p, berr := buildAndSavePyramid(path, ds, f)
		if berr != nil {
			return nil, 0, fmt.Errorf("asrs: rebuilding after corrupt pyramid (quarantined at %s): %w", qpath, berr)
		}
		return p, PyramidRebuilt, nil
	case errors.Is(err, fs.ErrNotExist):
		p, berr := buildAndSavePyramid(path, ds, f)
		if berr != nil {
			return nil, 0, berr
		}
		return p, PyramidBuilt, nil
	default:
		// Mismatch, permissions, I/O: surface it. Overwriting an artifact
		// we cannot even read would destroy the evidence.
		return nil, 0, fmt.Errorf("asrs: loading pyramid %s: %w", path, err)
	}
}

func buildAndSavePyramid(path string, ds *Dataset, f *Composite) (*Pyramid, error) {
	p, err := dssearch.BuildPyramid(ds, f)
	if err != nil {
		return nil, err
	}
	if err := persist.SavePyramid(path, p); err != nil {
		return nil, fmt.Errorf("asrs: saving pyramid %s: %w", path, err)
	}
	return p, nil
}

// UnitWeights returns a weight vector of n ones.
func UnitWeights(n int) []float64 { return agg.UnitWeights(n) }

// Distance returns the weighted distance between two representations.
func Distance(norm Norm, u, v, w []float64) float64 { return agg.Distance(norm, u, v, w) }
